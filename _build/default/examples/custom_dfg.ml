(* Bring your own function: parse a DFG from text, profile closely-related
   operation pairs, and optimise under recovery Rule 2.

   The paper's Rule 2 for fast recovery treats same-type operations whose
   inputs always stay close as one operation; such pairs are found "by
   analyzing the algorithm or profiling input relations through a large
   set of test vectors".  This example writes a small moving-average DFG
   in the text format, profiles it, and shows the extra constraints at
   work.

   Run with: dune exec examples/custom_dfg.exe *)

module T = Trojan_hls

let source =
  {|dfg moving_average
input x0
input x1
input x2
input x3
# adjacent averages: closely-related by construction
n0 = add x0 x1
n1 = add x1 x2
n2 = add x2 x3
n3 = shr n0 1
n4 = shr n1 1
n5 = shr n2 1
n6 = add n3 n4
n7 = add n6 n5
n8 = mul n7 n7
|}

let () =
  let dfg =
    match T.Dfg_parse.of_string source with
    | Ok d -> d
    | Error e -> failwith (Format.asprintf "parse error: %a" T.Dfg_parse.pp_error e)
  in
  Format.printf "Parsed %s: %d ops@." (T.Dfg.name dfg) (T.Dfg.n_ops dfg);
  (* profile closely-related pairs: adjacent moving-average terms see
     operands that differ by at most the input range of one sample *)
  let prng = T.Prng.create ~seed:7 in
  let config = { T.Profile.default_config with input_lo = 100; input_hi = 108; delta = 8 } in
  let related = T.Profile.closely_related ~config ~prng dfg in
  Format.printf "Closely-related pairs (profiled): %s@."
    (String.concat ", "
       (List.map (fun (i, j) -> Printf.sprintf "(n%d, n%d)" i j) related));
  let solve closely_related =
    let spec =
      T.Spec.make ~closely_related ~dfg ~catalog:T.Catalog.eight_vendors
        ~latency_detect:6 ~latency_recover:5 ~area_limit:60_000 ()
    in
    match T.Optimize.run spec with
    | Ok { design; _ } -> Some (T.Design.stats design)
    | Error _ -> None
  in
  let describe = function
    | Some s ->
        Printf.sprintf "$%d with %d licences from %d vendors" s.T.Design.mc
          s.T.Design.t s.T.Design.v
    | None -> "no design"
  in
  let base = solve [] in
  let ruled = solve related in
  Format.printf "Without recovery Rule 2: %s@." (describe base);
  Format.printf "With recovery Rule 2:    %s@." (describe ruled);
  (match (base, ruled) with
  | Some b, Some r when r.T.Design.mc > b.T.Design.mc ->
      Format.printf
        "Rule 2 made the recovery binding avoid every detection vendor of the \
         related partners, costing an extra $%d in licences.@."
        (r.T.Design.mc - b.T.Design.mc)
  | Some b, Some r when r.T.Design.mc = b.T.Design.mc ->
      Format.printf
        "Here the optimiser absorbed the extra recovery conflicts at no extra \
         cost — the related additions have no add-to-add dependence edges, so \
         one fresh adder vendor covers all of them.  The deactivation \
         guarantee still got stronger: no detection-phase vendor of a related \
         operation executes in recovery.@."
  | _ ->
      Format.printf
        "Rule 2 can also make a spec infeasible when the catalogue has too few \
         vendors to escape the accumulated histories.@.")
