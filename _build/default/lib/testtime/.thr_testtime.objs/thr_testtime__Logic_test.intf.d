lib/testtime/logic_test.mli: Thr_gates Thr_util
