lib/hls/design.mli: Binding Format Schedule Spec Thr_iplib
