(** Complete designs: a spec plus a schedule and a binding.

    The object the optimisers produce and the run-time engine executes.
    {!validate} re-checks every constraint of Section 4 independently of
    how the design was found; {!stats} computes the columns the paper's
    Tables 3–4 report. *)

type t = { spec : Spec.t; schedule : Schedule.t; binding : Binding.t }

val make : Spec.t -> Schedule.t -> Binding.t -> t

type stats = {
  u : int;   (** IP-core instances used (Σ ε) *)
  t : int;   (** licences purchased (Σ δ) *)
  v : int;   (** distinct vendors used *)
  mc : int;  (** total licence cost in dollars (eq. 17) *)
  area : int; (** summed instance area (lhs of eq. 13) *)
}

val stats : t -> stats

val cost : t -> int
(** [mc] alone. *)

val validate : t -> string list
(** All violated constraints: schedule windows and dependences, vendor/type
    availability, every diversity rule, and the area limit.  Empty iff the
    design is valid. *)

val is_valid : t -> bool

val licences : t -> (Thr_iplib.Vendor.t * Thr_iplib.Iptype.t) list

val report : Format.formatter -> t -> unit
(** Multi-line human-readable report: per-step table of scheduled copies
    with their vendors, then licences and stats. *)
