(* From scheduling tables to silicon: elaborate an optimised design into a
   gate-level netlist, insert a structural Trojan, and watch the hardware
   comparator catch it while the re-bound recovery phase rides through.

   Run with: dune exec examples/rtl_demo.exe *)

module T = Trojan_hls

let () =
  let dfg = T.Benchmarks.motivational () in
  let spec =
    T.Spec.make ~dfg ~catalog:T.Catalog.table1 ~latency_detect:4
      ~latency_recover:3 ~area_limit:22_000 ()
  in
  let design =
    match T.Optimize.run spec with
    | Ok { design; _ } -> design
    | Error _ -> failwith "no design"
  in

  (* clean silicon *)
  let rtl = T.Rtl.elaborate ~width:16 design in
  Format.printf "Elaborated %s: %s@." (T.Dfg.name dfg) (T.Rtl.stats rtl);
  let env = [ ("a", 3); ("b", 5); ("c", 7); ("d", 2); ("e", 4); ("f", 6) ] in
  let golden = T.Dfg_eval.outputs dfg env in
  let r = T.Rtl.run rtl env in
  Format.printf "Clean run: mismatch=%b, output=%d (golden %d)@."
    r.T.Rtl.r_mismatch (snd (List.hd r.T.Rtl.r_nc)) (snd (List.hd golden));

  (* infect the vendor that executes NC copy of operation n3 with a
     combinational Trojan triggered by that operation's exact operands *)
  let gv = T.Dfg_eval.run dfg env in
  let a, b = T.Dfg_eval.operand_values dfg env gv 3 in
  let nc3 = T.Copy.index spec { T.Copy.op = 3; phase = T.Copy.NC } in
  let injection =
    {
      T.Engine.inj_vendor = T.Binding.vendor design.T.Design.binding nc3;
      inj_type = T.Spec.iptype_of_op spec 3;
      trojan =
        T.Trojan.make
          (T.Trojan.Combinational
             { a_pattern = a; b_pattern = b; mask = 0xFFFF })
          (T.Trojan.Xor_offset 0x00FF);
    }
  in
  let infected = T.Rtl.elaborate ~width:16 ~injections:[ injection ] design in
  Format.printf "Infected silicon (%s): %s@."
    (T.Vendor.name injection.T.Engine.inj_vendor)
    (T.Rtl.stats infected);
  let r = T.Rtl.run infected env in
  Format.printf
    "Infected run: mismatch=%b (NC output %d vs RC %d); recovery output %d \
     == golden %d: %b@."
    r.T.Rtl.r_mismatch
    (snd (List.hd r.T.Rtl.r_nc))
    (snd (List.hd r.T.Rtl.r_rc))
    (snd (List.hd r.T.Rtl.r_rv))
    (snd (List.hd golden))
    (r.T.Rtl.r_rv = golden);

  (* the behavioural engine agrees with the silicon *)
  let beh = T.Engine.run ~injections:[ injection ] design env in
  Format.printf
    "Behavioural engine agrees: detected=%b recovered=%b@." beh.T.Engine.detected
    beh.T.Engine.recovery_correct
