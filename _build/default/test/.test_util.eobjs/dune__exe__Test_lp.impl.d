test/test_lp.ml: Alcotest Array Format List QCheck QCheck_alcotest Thr_lp
