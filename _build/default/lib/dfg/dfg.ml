type operand = Const of int | Input of string | Node of int

type node = { id : int; kind : Op.kind; operands : operand array }

type t = {
  name : string;
  nodes : node array;
  input_names : string list; (* first-use order *)
  preds : int list array;
  succs : int list array;
}

module Builder = struct
  type dfg = t

  type t = {
    b_name : string;
    mutable rev_nodes : node list;
    mutable count : int;
    mutable rev_inputs : string list;
  }

  let create ~name = { b_name = name; rev_nodes = []; count = 0; rev_inputs = [] }

  let input b name =
    if not (List.mem name b.rev_inputs) then b.rev_inputs <- name :: b.rev_inputs;
    Input name

  let const v = Const v

  let add_op b kind operands =
    let arity = Op.arity kind in
    if List.length operands <> arity then
      invalid_arg
        (Printf.sprintf "Dfg.Builder.add_op: %s expects %d operands"
           (Op.to_string kind) arity);
    let check = function
      | Node i when i < 0 || i >= b.count ->
          invalid_arg "Dfg.Builder.add_op: dangling node operand"
      | Node _ | Const _ -> ()
      | Input name ->
          if not (List.mem name b.rev_inputs) then
            b.rev_inputs <- name :: b.rev_inputs
    in
    List.iter check operands;
    let id = b.count in
    b.count <- id + 1;
    b.rev_nodes <- { id; kind; operands = Array.of_list operands } :: b.rev_nodes;
    Node id

  let node_id = function
    | Node i -> i
    | Const _ | Input _ -> invalid_arg "Dfg.Builder.node_id: not a node"

  let build b : dfg =
    if b.count = 0 then invalid_arg "Dfg.Builder.build: empty graph";
    let nodes = Array.of_list (List.rev b.rev_nodes) in
    let n = Array.length nodes in
    let preds = Array.make n [] in
    let succs = Array.make n [] in
    Array.iter
      (fun nd ->
        let ps =
          Array.fold_left
            (fun acc operand ->
              match operand with
              | Node i -> if List.mem i acc then acc else i :: acc
              | Const _ | Input _ -> acc)
            [] nd.operands
        in
        let ps = List.sort Stdlib.compare ps in
        preds.(nd.id) <- ps;
        List.iter (fun p -> succs.(p) <- nd.id :: succs.(p)) ps)
      nodes;
    Array.iteri (fun i l -> succs.(i) <- List.sort Stdlib.compare l) succs;
    { name = b.b_name; nodes; input_names = List.rev b.rev_inputs; preds; succs }
end

let name t = t.name

let n_ops t = Array.length t.nodes

let node t i =
  if i < 0 || i >= n_ops t then invalid_arg "Dfg.node: id out of range";
  t.nodes.(i)

let nodes t = t.nodes

let kind t i = (node t i).kind

let inputs t = t.input_names

let preds t i =
  if i < 0 || i >= n_ops t then invalid_arg "Dfg.preds: id out of range";
  t.preds.(i)

let succs t i =
  if i < 0 || i >= n_ops t then invalid_arg "Dfg.succs: id out of range";
  t.succs.(i)

let edges t =
  let acc = ref [] in
  for i = n_ops t - 1 downto 0 do
    List.iter (fun j -> acc := (i, j) :: !acc) (List.rev t.succs.(i))
  done;
  !acc

let outputs t =
  let acc = ref [] in
  for i = n_ops t - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let sibling_pairs t =
  let module PS = Set.Make (struct
    type t = int * int

    let compare = Stdlib.compare
  end) in
  let set = ref PS.empty in
  Array.iter
    (fun nd ->
      let ps = t.preds.(nd.id) in
      let rec pairs = function
        | [] -> ()
        | p :: rest ->
            List.iter (fun q -> set := PS.add (min p q, max p q) !set) rest;
            pairs rest
      in
      pairs ps)
    t.nodes;
  PS.elements !set

let asap t =
  let n = n_ops t in
  let steps = Array.make n 1 in
  (* ids are topologically ordered by construction *)
  for i = 0 to n - 1 do
    List.iter (fun p -> if steps.(p) + 1 > steps.(i) then steps.(i) <- steps.(p) + 1) t.preds.(i)
  done;
  steps

let critical_path t =
  let steps = asap t in
  Array.fold_left max 0 steps

let alap t ~latency =
  let cp = critical_path t in
  if latency < cp then
    invalid_arg
      (Printf.sprintf "Dfg.alap: latency %d below critical path %d" latency cp);
  let n = n_ops t in
  let steps = Array.make n latency in
  for i = n - 1 downto 0 do
    List.iter (fun s -> if steps.(s) - 1 < steps.(i) then steps.(i) <- steps.(s) - 1) t.succs.(i)
  done;
  steps

let mobility t ~latency =
  let a = asap t and l = alap t ~latency in
  Array.init (n_ops t) (fun i -> l.(i) - a.(i))

let count_kind t k =
  Array.fold_left (fun acc nd -> if Op.equal nd.kind k then acc + 1 else acc) 0 t.nodes

let pp_operand ppf = function
  | Const v -> Format.fprintf ppf "%d" v
  | Input s -> Format.pp_print_string ppf s
  | Node i -> Format.fprintf ppf "n%d" i

let pp ppf t =
  Format.fprintf ppf "dfg %s@." t.name;
  List.iter (fun i -> Format.fprintf ppf "input %s@." i) t.input_names;
  Array.iter
    (fun nd ->
      Format.fprintf ppf "n%d = %s" nd.id (Op.to_string nd.kind);
      Array.iter (fun o -> Format.fprintf ppf " %a" pp_operand o) nd.operands;
      Format.pp_print_newline ppf ())
    t.nodes

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" t.name);
  List.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "  in_%s [shape=plaintext,label=\"%s\"];\n" i i))
    t.input_names;
  Array.iter
    (fun nd ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"n%d: %s\"];\n" nd.id nd.id
           (Op.symbol nd.kind));
      Array.iter
        (fun o ->
          match o with
          | Node p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p nd.id)
          | Input s -> Buffer.add_string buf (Printf.sprintf "  in_%s -> n%d;\n" s nd.id)
          | Const v ->
              Buffer.add_string buf
                (Printf.sprintf "  c%d_%d [shape=plaintext,label=\"%d\"];\n" nd.id v v);
              Buffer.add_string buf (Printf.sprintf "  c%d_%d -> n%d;\n" nd.id v nd.id))
        nd.operands)
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let equal a b =
  a.name = b.name && a.input_names = b.input_names
  && Array.length a.nodes = Array.length b.nodes
  && Array.for_all2 (fun (x : node) y -> x = y) a.nodes b.nodes
