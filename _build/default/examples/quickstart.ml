(* Quickstart: protect a DFG against run-time hardware Trojans.

   1. Take a function to implement (here: the diff2 benchmark).
   2. Pick a vendor catalogue and constraints.
   3. Optimise a minimum-licence-cost design with detection + recovery.
   4. Inject a Trojan and watch detection and recovery work.

   Run with: dune exec examples/quickstart.exe *)

module T = Trojan_hls

let () =
  (* 1. the function-to-implement *)
  let dfg = T.Benchmarks.diff2 () in
  Format.printf "Function: %s (%d operations, critical path %d)@." (T.Dfg.name dfg)
    (T.Dfg.n_ops dfg) (T.Dfg.critical_path dfg);

  (* 2. problem spec: 8 untrusted vendors, both phases latency-bounded *)
  let spec =
    T.Spec.make ~dfg ~catalog:T.Catalog.eight_vendors ~latency_detect:5
      ~latency_recover:4 ~area_limit:80_000 ()
  in

  (* 3. minimum-cost design satisfying all four diversity rules *)
  let design =
    match T.Optimize.run spec with
    | Ok { design; quality; seconds; _ } ->
        Format.printf "Optimised in %.2fs (%s)@." seconds
          (match quality with
          | T.Optimize.Optimal -> "proven optimal"
          | T.Optimize.Incumbent -> "incumbent*"
          | T.Optimize.Heuristic -> "heuristic");
        design
    | Error _ -> failwith "no design under these constraints"
  in
  Format.printf "%a@." T.Design.report design;

  (* 4. run one input vector with an injected Trojan.  The trigger is the
     exact operand pair operation n2 sees, so it fires during NC. *)
  let env = List.map (fun i -> (i, 7)) (T.Dfg.inputs dfg) in
  let golden = T.Dfg_eval.run dfg env in
  let a, b = T.Dfg_eval.operand_values dfg env golden 2 in
  let trojan =
    T.Trojan.make
      (T.Trojan.Combinational
         { a_pattern = a land 0xFFFF; b_pattern = b land 0xFFFF; mask = 0xFFFF })
      (T.Trojan.Xor_offset 0xBEEF)
  in
  let nc2 = T.Copy.index spec { T.Copy.op = 2; phase = T.Copy.NC } in
  let injection =
    {
      T.Engine.inj_vendor = T.Binding.vendor design.T.Design.binding nc2;
      inj_type = T.Spec.iptype_of_op spec 2;
      trojan;
    }
  in
  let v = T.Engine.run ~injections:[ injection ] design env in
  Format.printf
    "Trojan injected into %s: detected=%b, NC corrupted=%b, recovery ran=%b, \
     recovery correct=%b (in %d cycles)@."
    (T.Vendor.name injection.T.Engine.inj_vendor)
    v.T.Engine.detected (not v.T.Engine.nc_correct) v.T.Engine.recovery_ran
    v.T.Engine.recovery_correct v.T.Engine.cycles;
  let naive = T.Engine.run_without_rebinding ~injections:[ injection ] design env in
  Format.printf
    "Naive re-execution on the same cores instead: recovery correct=%b (the \
     paper's motivation for re-binding)@."
    naive.T.Engine.recovery_correct
