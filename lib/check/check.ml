module Netlist = Thr_gates.Netlist
module Json = Thr_util.Json
module Tablefmt = Thr_util.Tablefmt
module Trace = Thr_obs.Trace
module Metrics = Thr_obs.Metrics

type taint_spec = {
  vendor_of : Netlist.net -> int option;
  mismatch : Netlist.net;
  min_vendors : int;
}

type report = {
  netlist_name : string;
  n_nets : int;
  n_gates : int;
  n_dffs : int;
  findings : Finding.t list;
  probs : float array;
}

let runs = Metrics.counter "thr_check_runs"

let c_error = Metrics.counter "thr_check_findings_error"

let c_warning = Metrics.counter "thr_check_findings_warning"

let c_info = Metrics.counter "thr_check_findings_info"

let count_severity fs sev =
  List.length (List.filter (fun f -> f.Finding.severity = sev) fs)

(* Cross-check the analytic rare-net candidates against a packed-engine
   Monte-Carlo estimate.  Everything reported here is Info: the
   empirical pass corroborates or questions the model, it never changes
   the exit code (sampling noise must not flake a CI lint). *)
let empirical_findings ~jobs ~vectors nl rare_findings =
  let q = Prob.empirical ~jobs ~seed:0x7105 ~vectors nl in
  let activation i = Float.min q.(i) (1.0 -. q.(i)) in
  let candidate_idx =
    List.filter_map
      (fun f ->
        if f.Finding.rule = "rare-net" then f.Finding.net else None)
      rare_findings
    |> List.sort_uniq Stdlib.compare
  in
  let corroborated = ref 0 and contradicted = ref 0 in
  let per_net =
    Netlist.nets_in_order nl
    |> Array.to_list
    |> List.filter_map (fun net ->
           let i = Netlist.net_index net in
           if not (List.mem i candidate_idx) then None
           else begin
             let a = activation i in
             (* a true trigger candidate should essentially never toggle
                in a few thousand vectors; anything past 1% is the model
                and the simulation disagreeing *)
             let agrees = a < 0.01 in
             if agrees then incr corroborated else incr contradicted;
             Some
               (Finding.make ~pass:Finding.Rare ~severity:Finding.Info
                  ~rule:"rare-empirical" ~net
                  (Printf.sprintf
                     "%s: empirical activation %.3g over %d packed vectors \
                      %s the analytic rare-net score"
                     (Finding.net_label nl net) a vectors
                     (if agrees then "corroborates" else "contradicts")))
           end)
  in
  let summary =
    Finding.make ~pass:Finding.Rare ~severity:Finding.Info ~rule:"empirical"
      (Printf.sprintf
         "empirical cross-check: %d vectors on the packed engine; %d/%d \
          rare-net candidate(s) corroborated"
         vectors !corroborated
         (!corroborated + !contradicted))
  in
  summary :: per_net

let run ?taint ?rare_threshold ?prob_iters ?empirical ?(jobs = 1) nl =
  Metrics.incr runs;
  let name = Netlist.name nl in
  let lint_findings =
    Trace.with_span "check.lint" ~args:[ ("netlist", name) ] (fun () ->
        Lint.analyse nl)
  in
  let taint_findings =
    match taint with
    | None -> []
    | Some { vendor_of; mismatch; min_vendors } ->
        Trace.with_span "check.taint" ~args:[ ("netlist", name) ] (fun () ->
            fst (Taint.analyse ~vendor_of ~mismatch ~min_vendors nl))
  in
  let rare_findings, probs =
    (* The mismatch comparator's reduction cone (up to the register
       boundary) is scored as near-constant because the NC/RC replicas
       it compares always agree — integrator-inserted checker logic the
       taint pass verifies structurally, so keep it out of the
       trigger-candidate scoring. *)
    let exclude =
      Option.map
        (fun { mismatch; _ } ->
          Netlist.in_cone nl ~through_dffs:false ~roots:[ mismatch ] ())
        taint
    in
    Trace.with_span "check.rare" ~args:[ ("netlist", name) ] (fun () ->
        Prob.analyse ?iters:prob_iters ?threshold:rare_threshold ?exclude nl)
  in
  let empirical_fs =
    match empirical with
    | None -> []
    | Some vectors ->
        Trace.with_span "check.empirical"
          ~args:[ ("netlist", name); ("vectors", string_of_int vectors) ]
          (fun () -> empirical_findings ~jobs ~vectors nl rare_findings)
  in
  let findings =
    List.sort Finding.compare
      (lint_findings @ taint_findings @ rare_findings @ empirical_fs)
  in
  Metrics.add c_error (count_severity findings Finding.Error);
  Metrics.add c_warning (count_severity findings Finding.Warning);
  Metrics.add c_info (count_severity findings Finding.Info);
  {
    netlist_name = name;
    n_nets = Netlist.n_nets nl;
    n_gates = Netlist.n_gates nl;
    n_dffs = Netlist.n_dffs nl;
    findings;
    probs;
  }

let errors r =
  List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings

let warnings r =
  List.filter (fun f -> f.Finding.severity = Finding.Warning) r.findings

let clean r = not (List.exists Finding.is_blocking r.findings)

let exit_code r =
  if clean r then Thr_util.Exit_code.Ok else Thr_util.Exit_code.Lint

let to_json r =
  Json.Obj
    [
      ("netlist", Json.String r.netlist_name);
      ("nets", Json.Int r.n_nets);
      ("gates", Json.Int r.n_gates);
      ("dffs", Json.Int r.n_dffs);
      ("clean", Json.Bool (clean r));
      ("errors", Json.Int (List.length (errors r)));
      ("warnings", Json.Int (List.length (warnings r)));
      ("findings", Json.List (List.map Finding.to_json r.findings));
    ]

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d nets, %d gates, %d DFFs\n" r.netlist_name r.n_nets
       r.n_gates r.n_dffs);
  (match r.findings with
  | [] -> ()
  | fs ->
      let tbl =
        Tablefmt.create
          ~aligns:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
          ~header:[ "severity"; "pass"; "rule"; "detail" ]
          ()
      in
      List.iter
        (fun f ->
          Tablefmt.add_row tbl
            [
              Finding.severity_name f.Finding.severity;
              Finding.pass_name f.Finding.pass;
              f.Finding.rule;
              f.Finding.detail;
            ])
        fs;
      Buffer.add_string buf (Tablefmt.render tbl);
      Buffer.add_char buf '\n');
  Buffer.add_string buf
    (if clean r then "clean: no blocking findings\n"
     else
       Printf.sprintf "NOT clean: %d error(s), %d warning(s)\n"
         (List.length (errors r))
         (List.length (warnings r)));
  Buffer.contents buf
