test/test_testtime.ml: Alcotest Array List Printf Thr_gates Thr_testtime Thr_util
