(** Identification of operation pairs with closely-related inputs.

    The paper's Rule 2 for fast recovery treats two same-type operations
    whose inputs always stay close as if they were the same operation.  It
    suggests finding such pairs "by analyzing the algorithm or profiling
    input relations through a large set of test vectors"; this module
    implements the profiling route: the DFG is evaluated on many random
    input vectors and a pair [(i, j)] is reported when, on {e every} vector,
    both operand distances are at most [delta]. *)

type config = {
  n_vectors : int;   (** number of random input vectors (default 256) *)
  input_lo : int;    (** inclusive lower bound of random inputs *)
  input_hi : int;    (** inclusive upper bound of random inputs *)
  delta : int;       (** closeness threshold on operand distance *)
}

val default_config : config
(** 256 vectors over [\[-1000, 1000\]] with [delta = 8]. *)

val closely_related :
  ?config:config -> prng:Thr_util.Prng.t -> Dfg.t -> (int * int) list
(** All pairs [(i, j)], [i < j], of same-kind operations whose operand
    streams stayed within [delta] on every profiled vector.  For commutative
    kinds ([Add], [Mul]) operand order is ignored when measuring distance. *)

val max_distance :
  ?config:config -> prng:Thr_util.Prng.t -> Dfg.t -> int -> int -> int
(** Largest operand distance observed between ops [i] and [j] over the
    profiled vectors (with the same commutativity convention).

    @raise Invalid_argument if the two ops have different kinds. *)
