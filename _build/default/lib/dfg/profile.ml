type config = { n_vectors : int; input_lo : int; input_hi : int; delta : int }

let default_config = { n_vectors = 256; input_lo = -1000; input_hi = 1000; delta = 8 }

let commutative = function
  | Op.Add | Op.Mul -> true
  | Op.Sub | Op.Lt | Op.Shl | Op.Shr -> false

let random_env config prng d =
  List.map
    (fun name -> (name, Thr_util.Prng.int_in prng config.input_lo config.input_hi))
    (Dfg.inputs d)

(* Distance between the operand pairs seen by two same-kind ops on one
   vector; for commutative kinds the cheaper of the two pairings is used. *)
let pair_distance kind (a1, b1) (a2, b2) =
  let straight = max (abs (a1 - a2)) (abs (b1 - b2)) in
  if commutative kind then
    let swapped = max (abs (a1 - b2)) (abs (b1 - a2)) in
    min straight swapped
  else straight

let observe config prng d =
  (* For each vector, record each op's operand pair. *)
  let n = Dfg.n_ops d in
  let vectors =
    Array.init config.n_vectors (fun _ ->
        let env = random_env config prng d in
        let values = Eval.run d env in
        Array.init n (fun i -> Eval.operand_values d env values i))
  in
  vectors

let max_distance_of vectors kind i j =
  Array.fold_left
    (fun acc per_op -> max acc (pair_distance kind per_op.(i) per_op.(j)))
    0 vectors

let closely_related ?(config = default_config) ~prng d =
  let vectors = observe config prng d in
  let n = Dfg.n_ops d in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ki = Dfg.kind d i and kj = Dfg.kind d j in
      if Op.equal ki kj && max_distance_of vectors ki i j <= config.delta then
        acc := (i, j) :: !acc
    done
  done;
  List.rev !acc

let max_distance ?(config = default_config) ~prng d i j =
  let ki = Dfg.kind d i and kj = Dfg.kind d j in
  if not (Op.equal ki kj) then
    invalid_arg "Profile.max_distance: ops have different kinds";
  let vectors = observe config prng d in
  max_distance_of vectors ki i j
