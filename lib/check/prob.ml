module Netlist = Thr_gates.Netlist
module Packed = Thr_gates.Packed
module Prng = Thr_util.Prng
module Dpool = Thr_util.Dpool

(* Calibrated between the two populations this repo elaborates: a
   full-width trigger condition (>= 32 specified pattern bits) scores
   <= 2^-32 ~ 2.3e-10, and a set-only trigger latch fed by it (Fig. 3)
   accumulates to ~(iters/2) * 2^-32 ~ 3e-9, while a clean design's
   rarest logic — wide equality comparators and time-multiplexed
   arithmetic cones — stays above ~3e-7 under the select-conditioned
   model below. *)
let default_threshold = 1e-8

let default_iters = 24

(* Plain independence scoring has a fatal blind spot on time-multiplexed
   datapaths: every gate in a shared core's cone is gated by the same
   step-select net (operand muxes [mux sel 0 x]), and treating those
   gates as independent multiplies the select's probability back in at
   every meet — a 16-bit multiplier's carry chain compounds [p(sel)^k]
   and lands below any trigger threshold.  To kill that false-positive
   class each net carries, besides its probability, at most one
   {e conditioning literal}: a [(net, polarity, residual)] triple
   meaning "this net computes [lit AND x] where [P(x) = residual]".
   When two nets conditioned on the same literal meet at a gate, the
   literal's probability is paid once and only the residuals combine;
   different or absent literals fall back to independence.  A net with
   no stored tag acts as its own literal (a NOT gate as its operand's
   negative literal), which also buys absorption ([a OR (a AND x) = a])
   for free. *)

type tag = { lit : int; pos : bool; residual : float }

let signal_probabilities ?(iters = default_iters) nl =
  let n = Netlist.n_nets nl in
  let p = Array.make n 0.5 in
  let tags : tag option array = Array.make n None in
  let order = Netlist.nets_in_order nl in
  let clamp v = Float.max 0.0 (Float.min 1.0 v) in
  (* One combinational propagation over explicit arrays, so the same code
     serves the main fixpoint and the conditional re-evaluations below.
     [pin] forces one net to a value for the whole pass (its fanout sees
     the pinned probability; its own driver is not evaluated). *)
  let sweep ?pin p (tags : tag option array) =
    let get x = p.(Netlist.net_index x) in
    let plit l pos = if pos then p.(l) else 1.0 -. p.(l) in
    (* effective descriptor: stored tag, else the net as its own literal *)
    let desc x =
      let i = Netlist.net_index x in
      let t =
        match tags.(i) with
        | Some t -> t
        | None -> (
            match Netlist.driver nl x with
            | Netlist.D_not a ->
                { lit = Netlist.net_index a; pos = false; residual = 1.0 }
            | _ -> { lit = i; pos = true; residual = 1.0 })
      in
      (p.(i), t)
    in
    let and_desc (pa, a) (pb, b) =
      if a.lit = b.lit && a.pos = b.pos then
        let r = a.residual *. b.residual in
        (plit a.lit a.pos *. r, Some { a with residual = r })
      else if a.lit = b.lit then (* l AND x, NOT l AND y: disjoint *)
        (0.0, None)
      else
        let tag =
          if plit a.lit a.pos <= plit b.lit b.pos then
            { a with residual = a.residual *. pb }
          else { b with residual = b.residual *. pa }
        in
        (pa *. pb, Some tag)
    in
    let or_desc (pa, a) (pb, b) =
      if a.lit = b.lit && a.pos = b.pos then
        let r = a.residual +. b.residual -. (a.residual *. b.residual) in
        (plit a.lit a.pos *. r, Some { a with residual = r })
      else if a.lit = b.lit then
        (* disjoint supports: OR is a sum *)
        ( (plit a.lit a.pos *. a.residual) +. (plit b.lit b.pos *. b.residual),
          None )
      else (1.0 -. ((1.0 -. pa) *. (1.0 -. pb)), None)
    in
    let xor_desc (pa, a) (pb, b) =
      if a.lit = b.lit && a.pos = b.pos then
        let r =
          a.residual +. b.residual -. (2.0 *. a.residual *. b.residual)
        in
        (plit a.lit a.pos *. r, Some { a with residual = r })
      else if a.lit = b.lit then
        ( (plit a.lit a.pos *. a.residual) +. (plit b.lit b.pos *. b.residual),
          None )
      else ((pa *. (1.0 -. pb)) +. (pb *. (1.0 -. pa)), None)
    in
    let lit_desc x pos =
      let px = get x in
      ( (if pos then px else 1.0 -. px),
        { lit = Netlist.net_index x; pos; residual = 1.0 } )
    in
    let mux_desc s t0 t1 =
      match (Netlist.driver nl t0, Netlist.driver nl t1) with
      | Netlist.D_const false, _ -> and_desc (lit_desc s true) (desc t1)
      | _, Netlist.D_const false -> and_desc (lit_desc s false) (desc t0)
      | Netlist.D_const true, _ -> or_desc (lit_desc s false) (desc t1)
      | _, Netlist.D_const true -> or_desc (lit_desc s true) (desc t0)
      | _ ->
          let ps = get s in
          let (p0, a) = desc t0 and (p1, b) = desc t1 in
          if a.lit = b.lit && a.pos = b.pos then
            if a.lit = Netlist.net_index s then
              (* mux(s, s&x, s&y) collapses to one arm *)
              if a.pos then
                (ps *. b.residual, Some { b with residual = b.residual })
              else ((1.0 -. ps) *. a.residual, Some a)
            else
              let r = ((1.0 -. ps) *. a.residual) +. (ps *. b.residual) in
              (plit a.lit a.pos *. r, Some { a with residual = r })
          else (((1.0 -. ps) *. p0) +. (ps *. p1), None)
    in
    let pinned i =
      match pin with Some j -> i = j | None -> false
    in
    (* combinational probabilities in evaluation order, registers held *)
    Array.iter
      (fun net ->
        let i = Netlist.net_index net in
        if not (pinned i) then begin
          let v, tag =
            match Netlist.driver nl net with
            | Netlist.D_input _ -> (0.5, None)
            | Netlist.D_const b -> ((if b then 1.0 else 0.0), None)
            | Netlist.D_dff _ -> (p.(i), None)
            | Netlist.D_not a -> (1.0 -. get a, None)
            | Netlist.D_and (a, b) -> and_desc (desc a) (desc b)
            | Netlist.D_or (a, b) -> or_desc (desc a) (desc b)
            | Netlist.D_nand (a, b) ->
                let pv, _ = and_desc (desc a) (desc b) in
                (1.0 -. pv, None)
            | Netlist.D_nor (a, b) ->
                let pv, _ = or_desc (desc a) (desc b) in
                (1.0 -. pv, None)
            | Netlist.D_xor (a, b) -> xor_desc (desc a) (desc b)
            | Netlist.D_mux (s, a, b) -> mux_desc s a b
          in
          p.(i) <- clamp v;
          tags.(i) <- tag
        end)
      order
  in
  (* power-on register state *)
  Array.iter
    (fun net ->
      match Netlist.driver nl net with
      | Netlist.D_dff k ->
          p.(Netlist.net_index net) <-
            (if Netlist.dff_init nl k then 1.0 else 0.0)
      | _ -> ())
    order;
  (* Hold-mux registers [q' = mux en q new]: the register samples [new]
     only on cycles where [en] fires, so its steady-state target is
     [P(new | en)], not the unconditional [p new].  That distinction is
     the sequential half of the time-multiplexing blind spot: a result
     register's data is gated by the same step-select chain as its load
     enable ("core busy" ORs, operand-mux selects), so the unconditional
     probability is select-crushed by several orders of magnitude and
     every downstream carry chain inherits the error.  No single
     conditioning literal survives that whole path (OR-absorption plus
     two mux levels), so [P(new | en)] is computed honestly: re-run the
     combinational sweep on scratch arrays with [en] pinned and read
     [new] there.  One conditional sweep per distinct enable per round. *)
  let cond_targets = Hashtbl.create 7 in
  let cond_prob en pos x =
    let key = (Netlist.net_index en, pos) in
    let pc =
      match Hashtbl.find_opt cond_targets key with
      | Some pc -> pc
      | None ->
          let pc = Array.copy p in
          let tc = Array.copy tags in
          let i = Netlist.net_index en in
          pc.(i) <- (if pos then 1.0 else 0.0);
          tc.(i) <- None;
          sweep ~pin:i pc tc;
          Hashtbl.add cond_targets key pc;
          pc
    in
    pc.(Netlist.net_index x)
  in
  for _round = 1 to iters do
    sweep p tags;
    Hashtbl.reset cond_targets;
    (* damped register update: p' = (p + target) / 2.  Plain assignment
       oscillates on toggling state (a counter's low bit alternates 0,1);
       averaging converges it to the 0.5 a long-run observer sees. *)
    Array.iter
      (fun net ->
        match Netlist.driver nl net with
        | Netlist.D_dff k ->
            let i = Netlist.net_index net in
            let data = Netlist.dff_data nl k in
            let target =
              match Netlist.driver nl data with
              | Netlist.D_mux (s, t0, t1) when Netlist.net_index t0 = i ->
                  cond_prob s true t1
              | Netlist.D_mux (s, t0, t1) when Netlist.net_index t1 = i ->
                  cond_prob s false t0
              | _ -> p.(Netlist.net_index data)
            in
            p.(i) <- 0.5 *. (p.(i) +. target)
        | _ -> ())
      order
  done;
  (* settle gate probabilities on the final register values *)
  sweep p tags;
  p

(* Monte-Carlo cross-check of the analytic model above: simulate random
   vectors on the multi-word strip engine and count how often each net
   is 1.  One generator per vector is split off up front (sequentially),
   each strip chunk copies its generators before drawing, and shard
   counts are plain sums — so the estimate is bit-identical for any
   [jobs] and any lane/strip packing. *)
let empirical_words = 4

let empirical ?(cycles = 8) ?(jobs = 1) ~seed ~vectors nl =
  if vectors < 1 then invalid_arg "Prob.empirical: vectors < 1";
  if cycles < 1 then invalid_arg "Prob.empirical: cycles < 1";
  Netlist.finalise nl;
  let names = Netlist.input_names nl in
  let input_tbl = Netlist.input_index nl in
  let ids = List.map (fun nm -> Hashtbl.find input_tbl nm) names in
  let nets = Netlist.nets_in_order nl in
  let n = Netlist.n_nets nl in
  let prng = Prng.create ~seed in
  let gens = Array.make vectors prng in
  for j = 0 to vectors - 1 do
    gens.(j) <- Prng.split prng
  done;
  let cap = empirical_words * Packed.lanes in
  let count_range lo hi =
    let counts = Array.make n 0 in
    let st = Packed.strip ~words:empirical_words nl in
    let j = ref lo in
    while !j < hi do
      let cnt = min cap (hi - !j) in
      let wu = (cnt + Packed.lanes - 1) / Packed.lanes in
      Packed.strip_reset st;
      let gs = Array.init cnt (fun k -> Prng.copy gens.(!j + k)) in
      for _ = 1 to cycles do
        (* inputs change every cycle, so each edge needs both settles:
           one for the comb cone under the new inputs, one after the
           latch — same count as the legacy clock, but each pass now
           carries [empirical_words] lane words of vectors *)
        List.iter
          (fun id ->
            for w = 0 to wu - 1 do
              let base = w * Packed.lanes in
              let c = min Packed.lanes (cnt - base) in
              let word = ref 0 in
              for k = 0 to c - 1 do
                if Prng.bool gs.(base + k) then word := !word lor (1 lsl k)
              done;
              Packed.strip_poke st id w !word
            done)
          ids;
        Packed.strip_settle st;
        Packed.strip_latch st;
        Packed.strip_settle st;
        Array.iter
          (fun net ->
            let i = Netlist.net_index net in
            let acc = ref 0 in
            for w = 0 to wu - 1 do
              let base = w * Packed.lanes in
              let mask = Packed.lane_mask (min Packed.lanes (cnt - base)) in
              acc :=
                !acc
                + Packed.popcount (Packed.strip_peek st net w land mask)
            done;
            counts.(i) <- counts.(i) + !acc)
          nets
      done;
      j := !j + cnt
    done;
    counts
  in
  let groups = (vectors + cap - 1) / cap in
  let counts =
    if jobs <= 1 || groups <= 1 then count_range 0 vectors
    else begin
      ignore (Packed.strip ~words:empirical_words nl);
      let shards = min groups (jobs * 2) in
      let per = (groups + shards - 1) / shards in
      let ranges =
        List.init shards (fun s ->
            let lo = s * per * cap in
            (lo, min vectors (lo + (per * cap))))
        |> List.filter (fun (lo, hi) -> lo < hi)
      in
      let partials =
        Dpool.run ~jobs (fun pool ->
            Dpool.map pool (fun (lo, hi) -> count_range lo hi) ranges)
      in
      let total = Array.make n 0 in
      List.iter
        (fun c ->
          for i = 0 to n - 1 do
            total.(i) <- total.(i) + c.(i)
          done)
        partials;
      total
    end
  in
  let samples = float_of_int (vectors * cycles) in
  Array.map (fun c -> float_of_int c /. samples) counts

let analyse ?iters ?(threshold = default_threshold) ?exclude nl =
  let p = signal_probabilities ?iters nl in
  let cv = Lint.const_values nl in
  let excluded i =
    match exclude with Some m -> m.(i) | None -> false
  in
  let findings = ref [] in
  let rarest = ref 1.0 in
  Array.iter
    (fun net ->
      let i = Netlist.net_index net in
      (* statically-constant nets are dead logic, not triggers *)
      if cv.(i) = None && not (excluded i) then begin
        let activation = Float.min p.(i) (1.0 -. p.(i)) in
        if activation < !rarest then rarest := activation;
        if activation > 0.0 && activation < threshold then
          findings :=
            Finding.make ~pass:Finding.Rare ~severity:Finding.Warning
              ~rule:"rare-net" ~net
              (Printf.sprintf
                 "%s has activation probability %.3g (threshold %.3g): \
                  trigger candidate"
                 (Finding.net_label nl net) activation threshold)
            :: !findings
      end)
    (Netlist.nets_in_order nl);
  let stats =
    Finding.make ~pass:Finding.Rare ~severity:Finding.Info ~rule:"rarest"
      (Printf.sprintf "rarest non-constant activation %.3g (threshold %.3g)"
         !rarest threshold)
  in
  (List.sort Finding.compare (stats :: !findings), p)
