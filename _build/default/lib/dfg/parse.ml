type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of error

let fail line fmt = Format.kasprintf (fun message -> raise (Fail { line; message })) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let is_int s =
  s <> ""
  && (match s.[0] with '-' | '0' .. '9' -> true | _ -> false)
  && match int_of_string_opt s with Some _ -> true | None -> false

let parse_operand b ~lineno ~inputs tok =
  if is_int tok then Dfg.Const (int_of_string tok)
  else if String.length tok > 1 && tok.[0] = 'n'
          && is_int (String.sub tok 1 (String.length tok - 1)) then
    Dfg.Node (int_of_string (String.sub tok 1 (String.length tok - 1)))
  else if List.mem tok !inputs then Dfg.Builder.input b tok
  else fail lineno "unknown operand %S (inputs must be declared first)" tok

let of_string text =
  let b = ref None in
  let inputs = ref [] in
  let count = ref 0 in
  let process lineno raw =
    let line = strip_comment raw in
    match tokens line with
    | [] -> ()
    | [ "dfg"; name ] ->
        if !b <> None then fail lineno "duplicate dfg header"
        else b := Some (Dfg.Builder.create ~name)
    | [ "input"; name ] -> (
        match !b with
        | None -> fail lineno "input before dfg header"
        | Some builder ->
            if List.mem name !inputs then fail lineno "duplicate input %S" name;
            inputs := name :: !inputs;
            ignore (Dfg.Builder.input builder name))
    | lhs :: "=" :: op :: rest -> (
        match !b with
        | None -> fail lineno "operation before dfg header"
        | Some builder ->
            let expected = Printf.sprintf "n%d" !count in
            if lhs <> expected then
              fail lineno "expected lhs %s, got %s" expected lhs;
            let kind =
              match Op.of_string op with
              | Some k -> k
              | None -> fail lineno "unknown operation %S" op
            in
            if List.length rest <> Op.arity kind then
              fail lineno "%s expects %d operands" op (Op.arity kind);
            let operands =
              List.map (parse_operand builder ~lineno ~inputs) rest
            in
            List.iter
              (function
                | Dfg.Node i when i >= !count ->
                    fail lineno "forward reference n%d" i
                | Dfg.Node _ | Dfg.Const _ | Dfg.Input _ -> ())
              operands;
            ignore (Dfg.Builder.add_op builder kind operands);
            incr count)
    | _ -> fail lineno "cannot parse line %S" (String.trim raw)
  in
  try
    List.iteri (fun i l -> process (i + 1) l) (String.split_on_char '\n' text);
    match !b with
    | None -> Error { line = 0; message = "missing dfg header" }
    | Some builder ->
        if !count = 0 then Error { line = 0; message = "no operations" }
        else Ok (Dfg.Builder.build builder)
  with Fail e -> Error e

let to_string d = Format.asprintf "%a" Dfg.pp d
