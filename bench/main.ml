(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus the run-time campaign behind Figs. 1-4 and
   an ablation study, and times the solvers with Bechamel.

     dune exec bench/main.exe            # fig5 table3 table4 campaign ablation
     dune exec bench/main.exe -- table3  # a single experiment
     dune exec bench/main.exe -- timing  # Bechamel micro-benchmarks
     dune exec bench/main.exe -- json    # solver metrics -> BENCH_solvers.json

   `--jobs N` fans independent work (table rows, campaign trials) out over
   N domains; the default is `Dpool.default_jobs ()` and `--jobs 1` runs
   everything sequentially and deterministically.  `--trace FILE` records
   a Chrome trace_event profile of the run (chrome://tracing / Perfetto).

   Area constraints: the paper's absolute unit-cell numbers assume its
   (unpublished) 8-vendor catalogue, so each row's area budget is derived
   from our catalogue instead — `loose` rows get 2.5x and `tight` rows
   1.5x the instance-area lower bound of that row's latency window (see
   EXPERIMENTS.md). *)

module T = Trojan_hls

(* set from --jobs in [main] before any experiment runs *)
let jobs = ref 1

let catalog = T.Catalog.eight_vendors

(* area lower bound for a spec with every licence allowed *)
let area_lb spec =
  let inst = T.Opt_instance.make spec in
  let allowed = Array.make_matrix inst.T.Opt_instance.n_vendors 3 true in
  match T.Csp.area_lower_bound inst ~allowed with
  | Some lb -> lb
  | None -> invalid_arg "area_lb: catalogue misses a type"

let spec_for ~mode ~dfg ~latency_detect ~latency_recover ~frac =
  let probe =
    T.Spec.make ~mode ~dfg ~catalog ~latency_detect ~latency_recover
      ~area_limit:max_int ()
  in
  let area_limit = int_of_float (float_of_int (area_lb probe) *. frac) in
  T.Spec.make ~mode ~dfg ~catalog ~latency_detect ~latency_recover ~area_limit ()

type row = {
  bench : string;
  lambda : int;           (** the tables' λ: detection (+ recovery) steps *)
  l_det : int;
  l_rec : int;            (** 0 for detection-only rows *)
  frac : float;
  paper_mc : string;      (** the paper's reported minimum cost *)
}

(* Table 3 of the paper: detection-only; λ values straight from the paper,
   loose-area first row, tight-area second row. *)
let table3_rows =
  [
    { bench = "polynom"; lambda = 3; l_det = 3; l_rec = 0; frac = 2.5; paper_mc = "3580" };
    { bench = "polynom"; lambda = 6; l_det = 6; l_rec = 0; frac = 1.5; paper_mc = "3320" };
    { bench = "diff2"; lambda = 4; l_det = 4; l_rec = 0; frac = 2.5; paper_mc = "4130" };
    { bench = "diff2"; lambda = 14; l_det = 14; l_rec = 0; frac = 1.5; paper_mc = "4130" };
    { bench = "dtmf"; lambda = 4; l_det = 4; l_rec = 0; frac = 2.5; paper_mc = "2960" };
    { bench = "dtmf"; lambda = 8; l_det = 8; l_rec = 0; frac = 1.5; paper_mc = "2960" };
    { bench = "mof2"; lambda = 7; l_det = 7; l_rec = 0; frac = 2.5; paper_mc = "2440" };
    { bench = "mof2"; lambda = 14; l_det = 14; l_rec = 0; frac = 1.5; paper_mc = "2440" };
    { bench = "elliptic"; lambda = 8; l_det = 8; l_rec = 0; frac = 2.5; paper_mc = "2690" };
    { bench = "elliptic"; lambda = 16; l_det = 16; l_rec = 0; frac = 1.5; paper_mc = "3240*" };
    { bench = "fir16"; lambda = 6; l_det = 6; l_rec = 0; frac = 2.5; paper_mc = "2960" };
    { bench = "fir16"; lambda = 12; l_det = 12; l_rec = 0; frac = 1.5; paper_mc = "2960" };
  ]

(* Table 4: detection + recovery; λ covers both schedules, split as
   recovery = critical path, detection = the rest (the paper's Fig. 5
   example uses the same split: 4 + 3). *)
let table4_rows =
  [
    { bench = "polynom"; lambda = 6; l_det = 3; l_rec = 3; frac = 2.5; paper_mc = "5140" };
    { bench = "polynom"; lambda = 12; l_det = 9; l_rec = 3; frac = 1.5; paper_mc = "5140" };
    { bench = "diff2"; lambda = 8; l_det = 4; l_rec = 4; frac = 2.5; paper_mc = "5140" };
    { bench = "diff2"; lambda = 14; l_det = 10; l_rec = 4; frac = 1.5; paper_mc = "5190" };
    { bench = "dtmf"; lambda = 8; l_det = 4; l_rec = 4; frac = 2.5; paper_mc = "3830" };
    { bench = "dtmf"; lambda = 15; l_det = 11; l_rec = 4; frac = 1.5; paper_mc = "3830" };
    { bench = "mof2"; lambda = 14; l_det = 8; l_rec = 6; frac = 2.5; paper_mc = "3830" };
    { bench = "mof2"; lambda = 24; l_det = 18; l_rec = 6; frac = 1.5; paper_mc = "3830" };
    { bench = "elliptic"; lambda = 16; l_det = 8; l_rec = 8; frac = 2.5; paper_mc = "3180*" };
    { bench = "elliptic"; lambda = 24; l_det = 16; l_rec = 8; frac = 1.5; paper_mc = "4850*" };
    { bench = "fir16"; lambda = 12; l_det = 7; l_rec = 5; frac = 2.5; paper_mc = "3830" };
    { bench = "fir16"; lambda = 16; l_det = 11; l_rec = 5; frac = 1.5; paper_mc = "4390*" };
  ]

let spec_of_row ~mode row =
  let dfg = Option.get (T.Benchmarks.find row.bench) in
  spec_for ~mode ~dfg ~latency_detect:row.l_det
    ~latency_recover:(max row.l_rec 1) ~frac:row.frac

let run_table ~mode ~title ~paper_table rows =
  Format.printf "@.== %s ==@." title;
  let table =
    T.Tablefmt.create
      ~aligns:[ T.Tablefmt.Left; Right; Right; Right; Right; Right; Right; Right; Right; Right ]
      ~header:
        [ "Benchmark"; "n"; "lambda"; "A"; "u"; "t"; "v"; "mc"; "paper mc"; "time" ]
      ()
  in
  (* each row is an independent solve: fan them out over the domain pool
     (order is preserved — cells come back in row order) *)
  let row_cells row =
    let spec = spec_of_row ~mode row in
    let n = T.Dfg.n_ops spec.T.Spec.dfg in
    match T.Optimize.run ~per_call_nodes:150_000 ~max_candidates:300_000 ~time_limit:30.0 spec with
    | Ok { design; quality; seconds; _ } ->
        let s = T.Design.stats design in
        assert (T.Design.is_valid design);
        [
          row.bench;
          string_of_int n;
          string_of_int row.lambda;
          string_of_int spec.T.Spec.area_limit;
          string_of_int s.T.Design.u;
          string_of_int s.T.Design.t;
          string_of_int s.T.Design.v;
          Printf.sprintf "$%d%s" s.T.Design.mc (T.Optimize.quality_suffix quality);
          "$" ^ row.paper_mc;
          Printf.sprintf "%.2fs" seconds;
        ]
    | Error e ->
        [
          row.bench;
          string_of_int n;
          string_of_int row.lambda;
          string_of_int spec.T.Spec.area_limit;
          "-"; "-"; "-";
          (match e with
          | T.Optimize.Infeasible_proven -> "infeasible"
          | T.Optimize.Infeasible_budget -> "budget");
          "$" ^ row.paper_mc;
          "-";
        ]
  in
  let cells =
    T.Dpool.run ~jobs:!jobs (fun pool -> T.Dpool.map pool row_cells rows)
  in
  List.iter (T.Tablefmt.add_row table) cells;
  Format.printf "%s" (T.Tablefmt.render table);
  Format.printf
    "(A derived from our catalogue: 2.5x / 1.5x the area lower bound; paper \
     column %s)@."
    paper_table

let table3 () =
  run_table ~mode:T.Spec.Detection_only
    ~title:"Table 3 - Designs with Detection Only" ~paper_table:"Table 3"
    table3_rows

let table4 () =
  run_table ~mode:T.Spec.Detection_and_recovery
    ~title:"Table 4 - Designs with Detection and Recovery" ~paper_table:"Table 4"
    table4_rows

(* ------------------------------ fig5 ------------------------------ *)

let fig5 () =
  Format.printf "@.== Figure 5 - Motivational example ==@.";
  let spec =
    T.Spec.make ~dfg:(T.Benchmarks.motivational ()) ~catalog:T.Catalog.table1
      ~latency_detect:4 ~latency_recover:3 ~area_limit:22_000 ()
  in
  match T.Optimize.run spec with
  | Ok { design; quality; seconds; _ } ->
      let s = T.Design.stats design in
      Format.printf
        "optimal purchasing cost: $%d%s (paper: $4160); u=%d t=%d v=%d \
         area=%d/22000; solved in %.2fs@."
        s.T.Design.mc
        (T.Optimize.quality_suffix quality)
        s.T.Design.u s.T.Design.t s.T.Design.v s.T.Design.area seconds;
      Format.printf "%a" T.Design.report design
  | Error _ -> Format.printf "no design (unexpected)@."

(* ---------------------------- campaign ---------------------------- *)

let campaign () =
  Format.printf
    "@.== Run-time campaign (the behaviour behind Figs. 1-4) ==@.";
  let table =
    T.Tablefmt.create
      ~aligns:[ T.Tablefmt.Left; Right; Right; Right; Right; Right; Right; Right ]
      ~header:
        [
          "Benchmark"; "runs"; "activated"; "detected"; "rebind rec";
          "naive rec"; "latched rec"; "mean latency";
        ]
      ()
  in
  List.iter
    (fun (name, l_det, l_rec) ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let spec =
        spec_for ~mode:T.Spec.Detection_and_recovery ~dfg ~latency_detect:l_det
          ~latency_recover:l_rec ~frac:2.5
      in
      match T.Optimize.run spec with
      | Error _ -> Format.printf "%s: no design@." name
      | Ok { design; _ } ->
          let prng = T.Prng.create ~seed:2014 in
          let config = { T.Campaign.default_config with n_runs = 200 } in
          let r = T.Campaign.run ~config ~jobs:!jobs ~prng design in
          T.Tablefmt.add_row table
            [
              name;
              string_of_int r.T.Campaign.runs;
              string_of_int r.T.Campaign.activated;
              string_of_int r.T.Campaign.detected;
              string_of_int r.T.Campaign.rebind_recovered;
              string_of_int r.T.Campaign.naive_recovered;
              Printf.sprintf "%d/%d" r.T.Campaign.latched_recovered
                r.T.Campaign.latched_runs;
              Printf.sprintf "%.1f" r.T.Campaign.mean_detection_latency;
            ])
    [ ("polynom", 3, 3); ("diff2", 4, 4); ("fir16", 7, 5) ];
  Format.printf "%s" (T.Tablefmt.render table);
  Format.printf
    "(rebind = the paper's Rule 1 recovery; naive = re-execution on the same \
     cores, the strategy the paper's fault model rules out; latched = \
     payloads with memory, outside the paper's recovery scope)@."

(* ---------------------------- ablation ---------------------------- *)

let ablation () =
  Format.printf "@.== Ablation - design choices ==@.";
  (* (1) strict-paper vs symmetric rule 2 *)
  Format.printf "@.(1) eq. 7 scope: strict-paper (NC only) vs symmetric:@.";
  List.iter
    (fun name ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let cp = T.Dfg.critical_path dfg in
      let solve variant =
        let probe =
          T.Spec.make ~rule_variant:variant ~dfg ~catalog ~latency_detect:(cp + 1)
            ~latency_recover:cp ~area_limit:max_int ()
        in
        let area = int_of_float (float_of_int (area_lb probe) *. 2.5) in
        let spec =
          T.Spec.make ~rule_variant:variant ~dfg ~catalog ~latency_detect:(cp + 1)
            ~latency_recover:cp ~area_limit:area ()
        in
        match T.Optimize.run spec with
        | Ok { design; quality; _ } ->
            Printf.sprintf "$%d%s" (T.Design.cost design)
              (T.Optimize.quality_suffix quality)
        | Error _ -> "-"
      in
      Format.printf "  %-10s strict %s   symmetric %s@." name
        (solve T.Spec.Strict_paper) (solve T.Spec.Symmetric))
    [ "polynom"; "diff2"; "dtmf" ];
  (* (2) recovery rule 2 (closely-related pairs).  Under a uniform DSP
     workload every multiplication of the motivational DFG sees similar
     operands, so all three mul pairs are closely related: the recovery
     multipliers must then avoid every detection multiplier vendor. *)
  Format.printf "@.(2) recovery Rule 2 on the motivational DFG:@.";
  let solve_related closely_related =
    let spec =
      T.Spec.make ~closely_related ~dfg:(T.Benchmarks.motivational ())
        ~catalog:T.Catalog.eight_vendors ~latency_detect:4 ~latency_recover:3
        ~area_limit:80_000 ()
    in
    match T.Optimize.run spec with
    | Ok { design; quality; _ } ->
        let s = T.Design.stats design in
        Printf.sprintf "$%d%s (t=%d v=%d)" s.T.Design.mc
          (T.Optimize.quality_suffix quality)
          s.T.Design.t s.T.Design.v
    | Error _ -> "-"
  in
  Format.printf "  no closely-related pairs:         %s@." (solve_related []);
  Format.printf "  all mul pairs closely related:    %s@."
    (solve_related [ (0, 2); (0, 4); (2, 4) ]);
  (* (3) greedy vs optimal *)
  Format.printf "@.(3) greedy baseline vs licence search (detection+recovery):@.";
  List.iter
    (fun name ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let cp = T.Dfg.critical_path dfg in
      let spec =
        spec_for ~mode:T.Spec.Detection_and_recovery ~dfg ~latency_detect:(cp + 1)
          ~latency_recover:cp ~frac:2.5
      in
      let greedy =
        match T.Optimize.run ~solver:T.Optimize.Greedy spec with
        | Ok { design; _ } -> Printf.sprintf "$%d" (T.Design.cost design)
        | Error _ -> "-"
      in
      let search =
        match T.Optimize.run spec with
        | Ok { design; quality; _ } ->
            Printf.sprintf "$%d%s" (T.Design.cost design)
              (T.Optimize.quality_suffix quality)
        | Error _ -> "-"
      in
      Format.printf "  %-10s greedy %-8s search %s@." name greedy search)
    [ "polynom"; "diff2"; "dtmf"; "mof2" ];
  (* (4) the literal paper ILP vs the licence search, on the Fig. 5
     problem in both modes.  The det+rec ILP is given a bounded node
     budget; like the paper's hour-limited LINGO runs it may return an
     incumbent marked '*'. *)
  Format.printf "@.(4) literal ILP (eqs. 3-17) vs licence search on Fig. 5:@.";
  List.iter
    (fun (mode_label, mode, ilp_nodes) ->
      let spec =
        T.Spec.make ~mode ~dfg:(T.Benchmarks.motivational ())
          ~catalog:T.Catalog.table1 ~latency_detect:4 ~latency_recover:3
          ~area_limit:22_000 ()
      in
      List.iter
        (fun (label, solver) ->
          match T.Optimize.run ~solver ~per_call_nodes:ilp_nodes spec with
          | Ok { design; quality; seconds; _ } ->
              Format.printf "  %-14s %-16s $%d%s in %.2fs@." mode_label label
                (T.Design.cost design)
                (T.Optimize.quality_suffix quality)
                seconds
          | Error _ -> Format.printf "  %-14s %-16s failed@." mode_label label)
        [ ("licence search", T.Optimize.License_search); ("literal ILP", T.Optimize.Ilp) ])
    [
      ("det-only", T.Spec.Detection_only, 100_000);
      ("det+recovery", T.Spec.Detection_and_recovery, 3_000);
    ];
  (* (5) recovery endurance: how many further activations the purchased
     licences can absorb by repeated re-binding (the paper's
     "continue working correctly until they can be replaced") *)
  Format.printf
    "@.(5) recovery endurance: extra recovery rounds the purchased licences \
     support, as the designer adds spare licences per type (cheapest unused \
     vendors first):@.";
  List.iter
    (fun name ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let cp = T.Dfg.critical_path dfg in
      let spec =
        spec_for ~mode:T.Spec.Detection_and_recovery ~dfg ~latency_detect:(cp + 1)
          ~latency_recover:cp ~frac:2.5
      in
      match T.Optimize.run spec with
      | Error _ -> Format.printf "  %-10s no design@." name
      | Ok { design; _ } ->
          let owned = T.Design.licences design in
          let spares k =
            (* k cheapest not-yet-owned licences of every used type *)
            List.concat_map
              (fun ty ->
                T.Catalog.cheapest_vendors catalog ty
                |> List.filter (fun v ->
                       not
                         (List.exists
                            (fun (v', ty') ->
                              T.Vendor.equal v v' && ty = ty')
                            owned))
                |> List.filteri (fun i _ -> i < k)
                |> List.map (fun v -> (v, ty)))
              (List.sort_uniq compare (List.map snd owned))
          in
          let cost_of ls =
            List.fold_left (fun acc (v, ty) -> acc + T.Catalog.cost catalog v ty) 0 ls
          in
          let cells =
            List.map
              (fun k ->
                let extra = spares k in
                Printf.sprintf "+%dsp:%d rounds(+$%d)" k
                  (T.Endurance.rounds_supported ~extra_licences:extra design)
                  (cost_of extra))
              [ 0; 1; 2 ]
          in
          Format.printf "  %-10s %s@." name (String.concat "  " cells))
    [ "polynom"; "diff2"; "dtmf"; "mof2" ]

(* ---------------------------- testtime ---------------------------- *)

(* The quantified version of the paper's Section 1 argument: sweep trigger
   rarity and measure how often each *test-time* method catches the Trojan
   before deployment, against the run-time NC/RC check that catches every
   activation. *)
let testtime () =
  Format.printf
    "@.== Test-time vs run-time detection (the paper's Section 1 argument) ==@.";
  let table =
    T.Tablefmt.create
      ~aligns:[ T.Tablefmt.Left; Right; Right; Right; Right; Right ]
      ~header:
        [ "host"; "rare bits"; "random test"; "MERO"; "side channel"; "run-time" ]
      ()
  in
  let prng = T.Prng.create ~seed:7 in
  let trials = 8 in
  List.iter
    (fun (kind, kind_name) ->
      List.iter
        (fun rare_bits ->
          let counts = Array.make 4 0 in
          for _ = 1 to trials do
            let pair = T.Testtime.make_pair ~prng ~kind ~rare_bits () in
            let o = T.Testtime.evaluate ~prng ~n_tests:256 pair in
            if o.T.Testtime.random_test then counts.(0) <- counts.(0) + 1;
            if o.T.Testtime.mero then counts.(1) <- counts.(1) + 1;
            if o.T.Testtime.side_channel then counts.(2) <- counts.(2) + 1;
            if o.T.Testtime.runtime_would_catch then counts.(3) <- counts.(3) + 1
          done;
          let cell i = Printf.sprintf "%d/%d" counts.(i) trials in
          T.Tablefmt.add_row table
            [ kind_name; string_of_int rare_bits; cell 0; cell 1; cell 2; cell 3 ])
        [ 2; 4; 6; 10 ])
    [ (T.Testtime.Adder, "adder"); (T.Testtime.Multiplier, "multiplier") ];
  Format.printf "%s" (T.Tablefmt.render table);
  Format.printf
    "Logic testing fades with trigger rarity; the power side channel only \
     sees Trojans that are large relative to their host; the run-time NC/RC \
     comparison catches every activation regardless — the paper's case for \
     designing recovery in.@."

(* ------------------------------ rtl -------------------------------- *)

let rtl () =
  Format.printf "@.== RTL elaboration (structural netlists of the designs) ==@.";
  List.iter
    (fun (name, catalog, l_det, l_rec, area) ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let spec =
        T.Spec.make ~dfg ~catalog ~latency_detect:l_det ~latency_recover:l_rec
          ~area_limit:area ()
      in
      match T.Optimize.run spec with
      | Error _ -> Format.printf "  %-12s no design@." name
      | Ok { design; _ } ->
          let r = T.Rtl.elaborate ~width:16 design in
          Format.printf "  %-12s %s@." name (T.Rtl.stats r);
          (* one clean vector through the silicon as a sanity check *)
          let env =
            List.map (fun i -> (i, 5)) (T.Dfg.inputs dfg)
          in
          let golden = T.Dfg_eval.outputs dfg env in
          let res = T.Rtl.run r env in
          assert ((not res.T.Rtl.r_mismatch) && res.T.Rtl.r_nc = golden))
    [
      ("motivational", T.Catalog.table1, 4, 3, 40_000);
      ("diff2", T.Catalog.eight_vendors, 5, 4, 90_000);
      ("fir16", T.Catalog.eight_vendors, 7, 5, 300_000);
    ];
  Format.printf
    "(each netlist contains the shared functional units, operand muxes, \
     result registers, step counter and the NC/RC comparator)@."

(* ------------------------------- sim ------------------------------- *)

(* set from --min-speedup in [main]; 0 = report only, do not enforce *)
let min_speedup = ref 0.0

(* set from --max-ilp-warm-seconds in [main]; 0 = report only.  When
   positive, [json] fails (exit 1) if any measured warm ILP row takes
   longer than this many seconds — the CI regression gate for the
   revised-simplex + cutting-plane solve path. *)
let max_ilp_warm_seconds = ref 0.0

(* set from --bench in [main]; empty = every Table 3/4 row.  Restricts
   the [json] experiment to the named benchmarks (comma-separated), so
   CI can gate on a small fast subset. *)
let bench_filter : string list ref = ref []

module P = T.Gate_packed

(* vectors/second of [f], repeating the whole batch until >= 0.25s of
   wall clock so small netlists aren't timed by clock granularity *)
let rate f n_vectors =
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < 0.25 do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int (!reps * n_vectors) /. !elapsed

(* The campaign-class netlists of the [rtl] experiment, elaborated once. *)
let sim_netlists () =
  List.filter_map
    (fun (name, catalog, l_det, l_rec, area) ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let spec =
        T.Spec.make ~dfg ~catalog ~latency_detect:l_det ~latency_recover:l_rec
          ~area_limit:area ()
      in
      match T.Optimize.run spec with
      | Error _ -> None
      | Ok { design; _ } -> Some (name, T.Rtl.elaborate ~width:16 design))
    [
      ("motivational", T.Catalog.table1, 4, 3, 40_000);
      ("diff2", T.Catalog.eight_vendors, 5, 4, 90_000);
      ("fir16", T.Catalog.eight_vendors, 7, 5, 300_000);
    ]

type sim_row = {
  sim_bench : string;
  sim_nets : int;
  sim_mode : string;      (** scalar | packed | strips | incremental | fault-packed *)
  sim_activity : float;   (** input toggle probability of the stimulus *)
  sim_vps : float;        (** vectors/s, one domain *)
}

let strip_words = 8

(* Bit-identity of every engine/mode before timing anything, including
   the concurrent-fault path (mutant lanes vs per-mutant scalar runs —
   the line below is what CI greps for in the cosim smoke). *)
let sim_verify name nl =
  let cycles = 4 in
  let prng = T.Prng.create ~seed:42 in
  let check = P.batch ~prng ~cycles 200 in
  let lazy_check = P.batch ~prng ~cycles ~activity:0.2 200 in
  let oracle = P.run_reference nl check in
  assert (P.equal_outputs (P.run (P.create nl) check) oracle);
  assert (P.equal_outputs (P.run_sharded ~jobs:(max 2 !jobs) nl check) oracle);
  assert (P.equal_outputs (P.run_strips ~words:strip_words nl check) oracle);
  assert (
    P.equal_outputs
      (P.run_strips ~words:strip_words ~incremental:true nl check)
      oracle);
  assert (
    P.equal_outputs
      (P.run_strips ~jobs:(max 2 !jobs) ~words:strip_words nl check)
      oracle);
  let lazy_oracle = P.run_reference nl lazy_check in
  assert (
    P.equal_outputs
      (P.run_strips ~words:strip_words ~incremental:true nl lazy_check)
      lazy_oracle);
  (* mutant enables: force the first two inputs to distinct lane words *)
  let forced =
    match Array.to_list (P.tape_inputs (P.tape nl)) with
    | (a, _) :: (b, _) :: _ -> [ (a, 0x5555555555); (b, 0x3333333333) ]
    | [ (a, _) ] -> [ (a, 0x5555555555) ]
    | [] -> []
  in
  let mprng = T.Prng.create ~seed:7 in
  assert (
    P.equal_outputs
      (P.run_mutants ~cycles ~prng:mprng ~forced nl)
      (P.run_mutants_reference ~cycles ~prng:mprng ~forced nl));
  Format.printf
    "%s: all modes bit-identical (fault-packed lanes match per-mutant \
     scalar runs)@."
    name

let sim_measure (name, rtl) =
  let nl = rtl.T.Rtl.netlist in
  let cycles = 4 in
  sim_verify name nl;
  let nets = T.Netlist.n_nets nl in
  let prng = T.Prng.create ~seed:42 in
  (* smaller batch for the scalar engine so one rep stays sub-second on
     the large netlists; rates are per-vector so they stay comparable *)
  let scalar_n = P.lanes * 4 in
  let packed_n = P.lanes * 64 in
  let strips_n = P.lanes * strip_words * 16 in
  let row mode activity vps =
    { sim_bench = name; sim_nets = nets; sim_mode = mode;
      sim_activity = activity; sim_vps = vps }
  in
  let sim = P.create nl in
  let batch n act = P.batch ~prng ~cycles ~activity:act n in
  let strips_rate ~incremental act =
    let b = batch strips_n act in
    rate
      (fun () -> ignore (P.run_strips ~words:strip_words ~incremental nl b))
      strips_n
  in
  let forced =
    match Array.to_list (P.tape_inputs (P.tape nl)) with
    | (a, _) :: _ -> [ (a, 0x5555555555) ]
    | [] -> []
  in
  let mprng = T.Prng.create ~seed:7 in
  [
    row "scalar" 1.0
      (let b = batch scalar_n 1.0 in
       rate (fun () -> ignore (P.run_reference nl b)) scalar_n);
    row "packed" 1.0
      (let b = batch packed_n 1.0 in
       rate (fun () -> ignore (P.run sim b)) packed_n);
    row "strips" 1.0 (strips_rate ~incremental:false 1.0);
    row "strips" 0.05 (strips_rate ~incremental:false 0.05);
    row "incremental" 1.0 (strips_rate ~incremental:true 1.0);
    row "incremental" 0.25 (strips_rate ~incremental:true 0.25);
    row "incremental" 0.05 (strips_rate ~incremental:true 0.05);
    (* one tape pass per cycle simulates [lanes] trojan on/off variants *)
    row "fault-packed" 1.0
      (rate
         (fun () -> ignore (P.run_mutants ~cycles ~prng:mprng ~forced nl))
         P.lanes);
  ]

let sim_measurements () = List.concat_map sim_measure (sim_netlists ())

let sim () =
  Format.printf
    "@.== Gate-simulation throughput (%d lanes, %d-word strips) ==@." P.lanes
    strip_words;
  let rows = sim_measurements () in
  let scalar_of bench =
    List.find_map
      (fun r ->
        if r.sim_bench = bench && r.sim_mode = "scalar" then Some r.sim_vps
        else None)
      rows
  in
  let table =
    T.Tablefmt.create
      ~aligns:[ T.Tablefmt.Left; Right; Left; Right; Right; Right ]
      ~header:[ "Benchmark"; "nets"; "mode"; "activity"; "v/s"; "vs scalar" ]
      ()
  in
  List.iter
    (fun r ->
      T.Tablefmt.add_row table
        [
          r.sim_bench;
          string_of_int r.sim_nets;
          r.sim_mode;
          Printf.sprintf "%.2f" r.sim_activity;
          Printf.sprintf "%.3g" r.sim_vps;
          (match scalar_of r.sim_bench with
          | Some s when s > 0.0 -> Printf.sprintf "%.1fx" (r.sim_vps /. s)
          | _ -> "-");
        ])
    rows;
  Format.printf "%s" (T.Tablefmt.render table);
  Format.printf
    "(4-cycle random vectors, one domain; strips = %d words per \
     dispatch, %d vectors per tape pass; fault-packed = %d trojan \
     variants per pass; every mode verified bit-identical first)@."
    strip_words (P.lanes * strip_words) P.lanes;
  if !min_speedup > 0.0 then begin
    (* enforce on the largest netlist: the strip engine exists to
       amortise per-instruction dispatch and per-lane stimulus, which
       dominate there.  The reference point is the packed engine as it
       stood before the strip rung (fir16 single-domain, recorded in
       BENCH_solvers.json schema 3), so the gate measures the rung
       itself rather than a same-run ratio that the shared fast
       stimulus path would flatten. *)
    let pre_strip_packed_vps = 24525.5 in
    let vps bench mode =
      List.find_map
        (fun r ->
          if r.sim_bench = bench && r.sim_mode = mode && r.sim_activity = 1.0
          then Some r.sim_vps
          else None)
        rows
    in
    match (vps "fir16" "strips", vps "fir16" "packed") with
    | None, _ | _, None ->
        Format.printf "--min-speedup: no fir16 strips/packed rows measured@.";
        exit 1
    | Some strips, Some packed ->
        let s = strips /. pre_strip_packed_vps in
        Format.printf
          "fir16 strips: %.3g v/s = %.1fx the pre-strip packed engine \
           (%.3g v/s recorded; same-run packed now %.3g v/s)@."
          strips s pre_strip_packed_vps packed;
        if s < !min_speedup then begin
          Format.printf
            "FAIL: strips speedup %.1fx on fir16 below required %.1fx@." s
            !min_speedup;
          exit 1
        end
        else
          Format.printf "speedup gate: %.1fx >= %.1fx on fir16, ok@." s
            !min_speedup
  end

(* ------------------------------ json ------------------------------ *)

(* Machine-readable solver metrics, written to BENCH_solvers.json with
   Thr_util.Json: for every Table 3/4 row the licence search's answer and
   effort, plus — on rows whose literal ILP stays small enough to
   branch-and-bound in seconds — a warm- vs cold-start comparison of the
   same solve (identical optimum, fewer pivots).  Rows above
   [ilp_var_gate] variables get ["ilp": null]: even with the
   LU-factorised revised simplex their branch-and-bound trees are too
   deep to finish within the node cap (the tight elliptic ILP alone has
   ~10k variables).  A final section
   drives the same rows through the optimisation service twice and
   records the cache hit-rate and service-side p50/p95 of the warm
   second pass. *)

module J = T.Json

let ilp_var_gate = 800
let ilp_node_cap = 2_000

(* round to 6 significant digits so BENCH_solvers.json diffs stay small *)
let sig6 x =
  if x = 0.0 || not (Float.is_finite x) then x
  else
    let scale = 10.0 ** (5.0 -. Float.floor (Float.log10 (Float.abs x))) in
    Float.round (x *. scale) /. scale

let json_quality = function
  | T.Optimize.Optimal -> "optimal"
  | T.Optimize.Incumbent -> "incumbent"
  | T.Optimize.Heuristic -> "heuristic"

(* one warm or cold branch-and-bound run over a built formulation *)
let json_ilp_side ~warm (f : T.Ilp_formulation.t) =
  let t0 = Unix.gettimeofday () in
  let outcome, st =
    T.Ilp_solve.solve ~max_nodes:ilp_node_cap ~priority:f.T.Ilp_formulation.priority_vars
      ~warm f.T.Ilp_formulation.model
  in
  let seconds = Unix.gettimeofday () -. t0 in
  let mc =
    match outcome with
    | T.Ilp_solve.Optimal sol | T.Ilp_solve.Budget (Some sol) ->
        J.Int (T.Design.cost (f.T.Ilp_formulation.read_design sol))
    | _ -> J.Null
  in
  let sx = st.T.Ilp_solve.simplex in
  (* share of node LPs answered from a revived basis; lp_solves can be 0
     when the node budget is 0, hence the guard *)
  let hit =
    float_of_int sx.T.Simplex.warm_solves
    /. float_of_int (max 1 st.T.Ilp_solve.lp_solves)
  in
  ( J.Obj
      [ ("mc", mc);
        ("nodes", J.Int st.T.Ilp_solve.nodes);
        ("lp_solves", J.Int st.T.Ilp_solve.lp_solves);
        ("pivots", J.Int (T.Ilp_solve.total_pivots st));
        ("warm_solves", J.Int sx.T.Simplex.warm_solves);
        ("cold_solves", J.Int sx.T.Simplex.cold_solves);
        ("refactorizations", J.Int sx.T.Simplex.refactorizations);
        ("eta_updates", J.Int sx.T.Simplex.eta_updates);
        ("cover_cuts", J.Int st.T.Ilp_solve.cover_cuts);
        ("clique_cuts", J.Int st.T.Ilp_solve.clique_cuts);
        ("cut_rounds", J.Int st.T.Ilp_solve.cut_rounds);
        ("warm_hit_rate", J.Float (sig6 hit));
        ("seconds", J.Float (sig6 seconds)) ],
    (T.Ilp_solve.total_pivots st, seconds) )

(* Per-row deltas of the process-wide metrics registry (simplex pivots,
   B&B and CSP nodes, licence candidates).  Registry counters are global,
   so with --jobs > 1 concurrent rows bleed into each other's deltas;
   with --jobs 1 they are exact.  Readers of schema 1 ignore the extra
   field. *)
let registry_deltas before after =
  let v l name = match List.assoc_opt name l with Some x -> x | None -> 0.0 in
  List.map
    (fun name -> (name, J.Int (int_of_float (v after name -. v before name))))
    [
      "simplex_pivots_total";
      "simplex_warm_solves_total";
      "simplex_cold_solves_total";
      "bb_nodes_total";
      "csp_nodes_total";
      "license_candidates_total";
    ]

(* one row -> (json object, (warm, cold) pivots when compared) *)
let json_row ~table ~mode row =
  let snap0 = T.Metrics.snapshot () in
  let spec = spec_of_row ~mode row in
  let ls =
    match
      T.Optimize.run ~per_call_nodes:150_000 ~max_candidates:300_000
        ~time_limit:30.0 spec
    with
    | Ok { design; quality; seconds; candidates; _ } ->
        [
          ("mc", J.Int (T.Design.cost design));
          ("quality", J.String (json_quality quality));
          ("seconds", J.Float (sig6 seconds));
          ("candidates", J.Int candidates);
        ]
    | Error e ->
        [
          ("mc", J.Null);
          ( "quality",
            J.String
              (match e with
              | T.Optimize.Infeasible_proven -> "infeasible"
              | T.Optimize.Infeasible_budget -> "budget") );
          ("seconds", J.Null);
          ("candidates", J.Null);
        ]
  in
  let f = T.Ilp_formulation.build spec in
  let nv = T.Ilp_model.n_vars f.T.Ilp_formulation.model in
  let ilp, pivots =
    if nv > ilp_var_gate then (J.Null, None)
    else begin
      let warm_json, (warm_piv, warm_secs) = json_ilp_side ~warm:true f in
      let cold_json, (cold_piv, _) = json_ilp_side ~warm:false f in
      let label = Printf.sprintf "%s %s lambda=%d" table row.bench row.lambda in
      ( J.Obj
          [ ("vars", J.Int nv);
            ("max_nodes", J.Int ilp_node_cap);
            ("warm", warm_json);
            ("cold", cold_json);
            ( "pivot_ratio",
              J.Float
                (sig6 (float_of_int cold_piv /. float_of_int (max 1 warm_piv)))
            ) ],
        Some (warm_piv, cold_piv, warm_secs, label) )
    end
  in
  let metrics = registry_deltas snap0 (T.Metrics.snapshot ()) in
  ( J.Obj
      ([
         ("table", J.String table);
         ("bench", J.String row.bench);
         ("lambda", J.Int row.lambda);
         ("l_det", J.Int row.l_det);
         ("l_rec", J.Int row.l_rec);
         ("frac", J.Float row.frac);
         ("paper_mc", J.String row.paper_mc);
       ]
      @ ls
      @ [ ("ilp", ilp); ("metrics", J.Obj metrics) ]),
    pivots )

(* Drive every Table 3/4 row through the optimisation service twice: a
   cold pass that populates the content-addressed solve cache and a warm
   pass answered from it.  Stats come from the service's own "stats"
   request, so the recorded hit-rate and p50/p95 are exactly what a
   client would observe.  Hard rows that degrade to the greedy incumbent
   within the deadline are (by design) not cached, so the hit-rate also
   documents how many of the paper's rows are service-cacheable within
   the per-request budget. *)
let json_service_pass () =
  let module S = Thr_server.Service in
  let config =
    { S.default_config with S.default_deadline_ms = Some 10_000 }
  in
  let service = S.create ~config () in
  let request ~mode row =
    let spec = spec_of_row ~mode row in
    J.to_string
      (J.Obj
         [ ("op", J.String "solve");
           ("dfg", J.String (T.Dfg_parse.to_string spec.T.Spec.dfg));
           ("catalog", J.String "eight");
           ( "mode",
             J.String
               (match mode with
               | T.Spec.Detection_only -> "detection"
               | T.Spec.Detection_and_recovery -> "detection_and_recovery") );
           ("latency_detect", J.Int spec.T.Spec.latency_detect);
           ("latency_recover", J.Int spec.T.Spec.latency_recover);
           ("area", J.Int spec.T.Spec.area_limit) ])
  in
  let work =
    List.map (fun r -> (T.Spec.Detection_only, r)) table3_rows
    @ List.map (fun r -> (T.Spec.Detection_and_recovery, r)) table4_rows
  in
  let lines = List.map (fun (mode, row) -> request ~mode row) work in
  let pass () =
    List.fold_left
      (fun hits line ->
        match S.handle_line service line with
        | J.Obj fields ->
            if List.assoc_opt "cache_hit" fields = Some (J.Bool true) then
              hits + 1
            else hits
        | _ -> hits)
      0 lines
  in
  let t0 = Unix.gettimeofday () in
  let cold_hits = pass () in
  let t_cold = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let warm_hits = pass () in
  let t_warm = Unix.gettimeofday () -. t1 in
  let stats =
    match S.stats_json service with
    | J.Obj fields -> (
        match List.assoc_opt "stats" fields with Some s -> s | None -> J.Null)
    | _ -> J.Null
  in
  let n = List.length lines in
  Format.printf
    "service: %d rows, cold pass %.1fs (%d hits), warm pass %.3fs (%d/%d \
     hits)@."
    n t_cold cold_hits t_warm warm_hits n;
  J.Obj
    [ ("rows", J.Int n);
      ("deadline_ms", J.Int 10_000);
      ("cold_seconds", J.Float t_cold);
      ("warm_seconds", J.Float t_warm);
      ( "warm_hit_rate",
        J.Float (float_of_int warm_hits /. float_of_int (max 1 n)) );
      ( "warm_speedup",
        J.Float (t_cold /. Float.max 1e-9 t_warm) );
      ("stats", stats) ]

let json () =
  Format.printf "@.== Solver metrics -> BENCH_solvers.json ==@.";
  let keep r = !bench_filter = [] || List.mem r.bench !bench_filter in
  let work =
    List.map
      (fun r -> ("table3", T.Spec.Detection_only, r))
      (List.filter keep table3_rows)
    @ List.map
        (fun r -> ("table4", T.Spec.Detection_and_recovery, r))
        (List.filter keep table4_rows)
  in
  if work = [] then begin
    Format.printf "--bench matched no Table 3/4 rows@.";
    exit 1
  end;
  let results =
    T.Dpool.run ~jobs:!jobs (fun pool ->
        T.Dpool.map pool
          (fun (table, mode, row) -> json_row ~table ~mode row)
          work)
  in
  let warm_total, cold_total, compared, slowest =
    List.fold_left
      (fun (w, c, n, sl) (_, p) ->
        match p with
        | Some (pw, pc, secs, label) ->
            let sl =
              match sl with
              | Some (s0, _) when s0 >= secs -> sl
              | _ -> Some (secs, label)
            in
            (w + pw, c + pc, n + 1, sl)
        | None -> (w, c, n, sl))
      (0, 0, 0, None) results
  in
  let ratio = float_of_int cold_total /. float_of_int (max 1 warm_total) in
  let service = json_service_pass () in
  let doc =
    J.Obj
      [ (* 4: "sim" becomes per-mode rows (scalar / packed / strips /
           incremental / fault-packed) with an activity column, replacing
           the scalar/packed/sharded triple.
           3: ILP sides gain LU/cut counters, warm_hit_rate is the share
           of node LPs warm-started (was warm/(warm+cold) solve mix), and
           floats are rounded to 6 significant digits.
           2: per-row "metrics" registry deltas; 1: no such field *)
        ("schema", J.Int 4);
        ("rows", J.List (List.map fst results));
        ( "summary",
          J.Obj
            [ ("rows_compared", J.Int compared);
              ("warm_pivots", J.Int warm_total);
              ("cold_pivots", J.Int cold_total);
              ( "max_warm_seconds",
                match slowest with
                | Some (s, _) -> J.Float (sig6 s)
                | None -> J.Null );
              ("pivot_ratio", J.Float (sig6 ratio)) ] );
        ("service", service);
        ( "sim",
          J.List
            (List.map
               (fun r ->
                 J.Obj
                   [ ("bench", J.String r.sim_bench);
                     ("nets", J.Int r.sim_nets);
                     ("mode", J.String r.sim_mode);
                     ("activity", J.Float r.sim_activity);
                     ("vps", J.Float (sig6 r.sim_vps)) ])
               (sim_measurements ())) );
        ("jobs", J.Int !jobs) ]
  in
  let oc = open_out "BENCH_solvers.json" in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Format.printf
    "wrote BENCH_solvers.json (%d rows, %d with warm/cold ILP comparison; \
     cold/warm pivot ratio %.2fx)@."
    (List.length results) compared ratio;
  (match slowest with
  | Some (s, label) ->
      Format.printf "slowest warm ILP row: %s at %.3fs@." label s
  | None -> ());
  if !max_ilp_warm_seconds > 0.0 then
    match slowest with
    | Some (s, label) when s > !max_ilp_warm_seconds ->
        Format.printf
          "--max-ilp-warm-seconds: %s took %.3fs, above the %.3fs budget@."
          label s !max_ilp_warm_seconds;
        exit 1
    | Some _ ->
        Format.printf "--max-ilp-warm-seconds: all rows within %.3fs@."
          !max_ilp_warm_seconds
    | None ->
        Format.printf "--max-ilp-warm-seconds: no ILP row measured@.";
        exit 1

(* ----------------------------- timing ----------------------------- *)

let timing () =
  let open Bechamel in
  let open Toolkit in
  Format.printf "@.== Timing (Bechamel, monotonic clock) ==@.";
  let solve ~mode ~name ~frac () =
    let dfg = Option.get (T.Benchmarks.find name) in
    let cp = T.Dfg.critical_path dfg in
    let spec =
      spec_for ~mode ~dfg ~latency_detect:(cp + 1) ~latency_recover:cp ~frac
    in
    match T.License_search.search spec with
    | T.License_search.Solved _, _ -> ()
    | _ -> ()
  in
  let engine_design =
    let spec =
      T.Spec.make ~dfg:(T.Benchmarks.motivational ()) ~catalog:T.Catalog.table1
        ~latency_detect:4 ~latency_recover:3 ~area_limit:40_000 ()
    in
    match T.Optimize.run spec with
    | Ok { design; _ } -> design
    | Error _ -> assert false
  in
  let env =
    List.map (fun i -> (i, 9)) (T.Dfg.inputs engine_design.T.Design.spec.T.Spec.dfg)
  in
  let simplex () =
    let p = T.Simplex.create ~n_vars:6 in
    T.Simplex.set_objective p [ (0, -3.0); (1, -5.0); (2, 1.0); (3, -2.0) ];
    T.Simplex.add_constraint p [ (0, 1.0); (2, 2.0) ] T.Simplex.Le 4.0;
    T.Simplex.add_constraint p [ (1, 2.0); (3, 1.0) ] T.Simplex.Le 12.0;
    T.Simplex.add_constraint p [ (0, 3.0); (1, 2.0); (4, 1.0) ] T.Simplex.Le 18.0;
    T.Simplex.add_constraint p [ (3, 1.0); (5, -1.0) ] T.Simplex.Ge 1.0;
    ignore (T.Simplex.solve p)
  in
  let tests =
    Test.make_grouped ~name:"thls"
      [
        (* one Test per regenerated table/figure *)
        Test.make ~name:"fig5:motivational"
          (Staged.stage (fun () ->
               let spec =
                 T.Spec.make ~dfg:(T.Benchmarks.motivational ())
                   ~catalog:T.Catalog.table1 ~latency_detect:4 ~latency_recover:3
                   ~area_limit:22_000 ()
               in
               ignore (T.License_search.search spec)));
        Test.make ~name:"table3:diff2-row"
          (Staged.stage (solve ~mode:T.Spec.Detection_only ~name:"diff2" ~frac:2.5));
        Test.make ~name:"table4:diff2-row"
          (Staged.stage
             (solve ~mode:T.Spec.Detection_and_recovery ~name:"diff2" ~frac:2.5));
        Test.make ~name:"campaign:engine-run"
          (Staged.stage (fun () -> ignore (T.Engine.run engine_design env)));
        Test.make ~name:"substrate:simplex" (Staged.stage simplex);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      if ns >= 1e9 then Format.printf "  %-28s %8.2f s/run@." name (ns /. 1e9)
      else if ns >= 1e6 then Format.printf "  %-28s %8.2f ms/run@." name (ns /. 1e6)
      else Format.printf "  %-28s %8.2f us/run@." name (ns /. 1e3))
    (List.sort compare rows);
  (* branch-and-bound / simplex effort counters on one representative
     warm-started solve (polynom, tight area, detection only) *)
  let row = List.nth table3_rows 1 in
  let spec = spec_of_row ~mode:T.Spec.Detection_only row in
  let f = T.Ilp_formulation.build spec in
  let _, st =
    T.Ilp_solve.solve ~priority:f.T.Ilp_formulation.priority_vars
      f.T.Ilp_formulation.model
  in
  Format.printf
    "@.B&B effort on %s lambda=%d (tight): nodes=%d lp_solves=%d@.  %a@."
    row.bench row.lambda st.T.Ilp_solve.nodes st.T.Ilp_solve.lp_solves
    T.Simplex.pp_stats st.T.Ilp_solve.simplex

(* ------------------------------- sat ------------------------------ *)

(* set from --max-inconclusive in [main]; negative = report only *)
let max_inconclusive = ref (-1)

let sat () =
  Format.printf
    "@.== SAT trigger reachability: prover portfolio vs sequential BMC \
     (bound %d, --jobs %d) ==@."
    T.Bmc.default_bound !jobs;
  let mutants design =
    [
      ("clean", []);
      ("trojan", [ T.Rtl.canned_injection ~width:16 design ]);
      ("trojan-seq", [ T.Rtl.canned_sequential_injection ~width:16 design ]);
      ("trojan-dud", [ T.Rtl.canned_dud_injection ~width:16 design ]);
    ]
  in
  (* the PR 7 shape of --prove: every candidate bounded-model-checked on
     its own solver, no cone sharing, no preprocessing, no induction *)
  let sequential_prover nl ~net ~value = T.Bmc.check_net nl ~net ~value in
  let metric snap name =
    match List.assoc_opt name snap with Some v -> v | None -> 0.0
  in
  let rows = ref [] in
  let total_candidates = ref 0
  and total_certified = ref 0
  and total_inconclusive = ref 0 in
  List.iter
    (fun (name, catalog, l_det, l_rec, area) ->
      let dfg = Option.get (T.Benchmarks.find name) in
      let spec =
        T.Spec.make ~dfg ~catalog ~latency_detect:l_det ~latency_recover:l_rec
          ~area_limit:area ()
      in
      match T.Optimize.run spec with
      | Error _ -> Format.printf "  %-12s no design@." name
      | Ok { design; _ } ->
          List.iter
            (fun (mutant, injections) ->
              let rtl = T.Rtl.elaborate ~width:16 ~injections design in
              let nl = rtl.T.Rtl.netlist in
              (* collect the candidate batch once: a recording prover
                 sees exactly the nets --prove hands the portfolio *)
              let cands = ref [] in
              let recorder ~net ~value =
                cands := (net, value) :: !cands;
                T.Bmc.Inconclusive 1
              in
              ignore
                (T.Rtl.check ~prove:T.Bmc.default_bound ~prover:recorder rtl);
              let cands = Array.of_list (List.rev !cands) in
              (* time the prover cores head to head, stripped of the
                 elaboration / scoring / simulation work both sides
                 share; best of two passes per side since a single
                 1-core run is at the mercy of GC and scheduler noise *)
              let timed f =
                let t0 = Unix.gettimeofday () in
                let r = f () in
                (r, 1000.0 *. (Unix.gettimeofday () -. t0))
              in
              let best2 f =
                let r, m1 = timed f in
                let _, m2 = timed f in
                (r, Float.min m1 m2)
              in
              let seq_outcomes, base_ms =
                best2 (fun () ->
                    Array.map
                      (fun (net, value) -> sequential_prover nl ~net ~value)
                      cands)
              in
              let seq_inconclusive =
                Array.fold_left
                  (fun n o ->
                    match o with T.Bmc.Inconclusive _ -> n + 1 | _ -> n)
                  0 seq_outcomes
              in
              let snap0 = T.Metrics.snapshot () in
              let report =
                T.Rtl.check ~prove:T.Bmc.default_bound ~jobs:!jobs rtl
              in
              let snap1 = T.Metrics.snapshot () in
              let _, ms =
                best2 (fun () -> T.Induction.prove ~jobs:!jobs nl cands)
              in
              let delta n = metric snap1 n -. metric snap0 n in
              let certs = delta "thr_sat_certificates_total" in
              let clauses_in = delta "thr_sat_preprocess_clauses_in_total" in
              let clauses_out = delta "thr_sat_preprocess_clauses_out_total" in
              let removed_vars = delta "thr_sat_preprocess_removed_vars_total" in
              let shrink =
                if clauses_in > 0.0 then clauses_out /. clauses_in else 1.0
              in
              match report.T.Check.prove with
              | None ->
                  Format.printf "  %-12s %-10s no prove stats@." name mutant
              | Some s ->
                  let speedup =
                    if s.T.Check.prove_candidates = 0 then 1.0
                    else base_ms /. Float.max 1e-6 ms
                  in
                  total_candidates := !total_candidates + s.T.Check.prove_candidates;
                  total_certified := !total_certified + s.T.Check.prove_certified;
                  total_inconclusive :=
                    !total_inconclusive + s.T.Check.prove_inconclusive;
                  Format.printf
                    "  %-12s %-10s candidates=%-3d reachable=%-3d certified=%-3d \
                     bounded=%-3d inconclusive=%-3d exit=%d  shrink=%.2f  \
                     seq=%.1fms (inconclusive=%d)  portfolio=%.1fms  %.1fx@."
                    name mutant s.T.Check.prove_candidates
                    s.T.Check.prove_reachable s.T.Check.prove_certified
                    s.T.Check.prove_unreachable s.T.Check.prove_inconclusive
                    (T.Exit_code.code (T.Check.exit_code report))
                    shrink base_ms seq_inconclusive ms speedup;
                  rows :=
                    J.Obj
                      [
                        ("bench", J.String name);
                        ("mutant", J.String mutant);
                        ("candidates", J.Int s.T.Check.prove_candidates);
                        ("reachable", J.Int s.T.Check.prove_reachable);
                        ("certified", J.Int s.T.Check.prove_certified);
                        ("bounded_unreachable", J.Int s.T.Check.prove_unreachable);
                        ("inconclusive", J.Int s.T.Check.prove_inconclusive);
                        ("exit", J.Int (T.Exit_code.code (T.Check.exit_code report)));
                        ("preprocess_shrink", J.Float (sig6 shrink));
                        ("preprocess_removed_vars", J.Int (int_of_float removed_vars));
                        ("certificates", J.Int (int_of_float certs));
                        ("sequential_ms", J.Float (sig6 base_ms));
                        ("portfolio_ms", J.Float (sig6 ms));
                        ("speedup", J.Float (sig6 speedup));
                      ]
                    :: !rows)
            (mutants design))
    [
      ("motivational", T.Catalog.table1, 4, 3, 40_000);
      ("diff2", T.Catalog.eight_vendors, 5, 4, 90_000);
    ];
  let rate =
    float_of_int !total_certified /. float_of_int (max 1 !total_candidates)
  in
  Format.printf
    "(certificate rate %.2f over %d candidates; every verdict exact: a \
     witness replayed on the packed simulator, an unbounded k-induction or \
     combinational certificate, or bounded unreachability)@."
    rate !total_candidates;
  (* merge the sat section into BENCH_solvers.json, preserving whatever
     `bench -- json` wrote there *)
  let existing =
    try
      let ic = open_in "BENCH_solvers.json" in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match J.parse s with Ok (J.Obj fields) -> fields | _ -> []
    with Sys_error _ -> []
  in
  let sat_doc =
    J.Obj
      [
        ("bound", J.Int T.Bmc.default_bound);
        ("jobs", J.Int !jobs);
        ("rows", J.List (List.rev !rows));
        ("candidates", J.Int !total_candidates);
        ("certified", J.Int !total_certified);
        ("certificate_rate", J.Float (sig6 rate));
        ("inconclusive", J.Int !total_inconclusive);
      ]
  in
  let fields =
    ("sat", sat_doc) :: List.filter (fun (k, _) -> k <> "sat") existing
  in
  let oc = open_out "BENCH_solvers.json" in
  output_string oc (J.to_string ~pretty:true (J.Obj fields));
  output_char oc '\n';
  close_out oc;
  Format.printf "merged sat section into BENCH_solvers.json@.";
  if !max_inconclusive >= 0 then
    if !total_inconclusive > !max_inconclusive then begin
      Format.printf
        "--max-inconclusive: %d inconclusive verdict(s), above the budget \
         of %d@."
        !total_inconclusive !max_inconclusive;
      exit 1
    end
    else
      Format.printf "--max-inconclusive: %d inconclusive within budget %d@."
        !total_inconclusive !max_inconclusive

(* ----------------------------- journal ---------------------------- *)

(* Cost of the runtime observability layer: the journal emit site when
   disabled (the price every simulation pays — one Atomic.get) and when
   enabled, the flight-recorder sampling rate, and the end-to-end
   overhead of a recorded run vs a plain one. *)
let journal () =
  Format.printf "@.== Runtime journal / flight recorder cost ==@.";
  let n = 1_000_000 in
  T.Journal.disable ();
  T.Journal.clear ();
  let disabled_rate =
    rate
      (fun () ->
        for c = 1 to n do
          T.Journal.emit ~cycle:c T.Journal.Trigger_candidate_active
        done)
      n
  in
  T.Journal.enable ();
  T.Journal.clear ();
  let enabled_rate =
    rate
      (fun () ->
        for c = 1 to n do
          T.Journal.emit ~cycle:c T.Journal.Trigger_candidate_active
        done)
      n
  in
  T.Journal.disable ();
  T.Journal.clear ();
  let signals = 64 in
  let words = Array.make signals 0 in
  let recorder =
    T.Recorder.create
      ~names:(Array.init signals (Printf.sprintf "n%d"))
      ~depth:256 ()
  in
  let pushes = 100_000 in
  let push_rate =
    rate
      (fun () ->
        for c = 1 to pushes do
          T.Recorder.push recorder ~cycle:c words
        done)
      pushes
  in
  let rtl =
    match sim_netlists () with
    | (_, rtl) :: _ -> rtl
    | [] -> failwith "no netlist"
  in
  let env =
    List.map
      (fun i -> (i, 9))
      (T.Dfg.inputs rtl.T.Rtl.design.T.Design.spec.T.Spec.dfg)
  in
  let plain_rate = rate (fun () -> ignore (T.Rtl.run rtl env)) 1 in
  let recorded_rate =
    rate (fun () -> ignore (T.Rtl.run_recorded rtl env)) 1
  in
  let table =
    T.Tablefmt.create
      ~aligns:[ T.Tablefmt.Left; Right ]
      ~header:[ "Site"; "rate" ] ()
  in
  T.Tablefmt.add_row table
    [ "emit, disabled"; Printf.sprintf "%.3g events/s" disabled_rate ];
  T.Tablefmt.add_row table
    [ "emit, enabled"; Printf.sprintf "%.3g events/s" enabled_rate ];
  T.Tablefmt.add_row table
    [
      Printf.sprintf "recorder push (%d signals)" signals;
      Printf.sprintf "%.3g cycles/s" push_rate;
    ];
  T.Tablefmt.add_row table
    [ "Rtl.run (motivational)"; Printf.sprintf "%.3g runs/s" plain_rate ];
  T.Tablefmt.add_row table
    [ "Rtl.run_recorded"; Printf.sprintf "%.3g runs/s" recorded_rate ];
  Format.printf "%s" (T.Tablefmt.render table);
  Format.printf
    "(disabled emit is the always-on cost: one Atomic.get per site; \
     disabled/enabled ratio %.1fx; recorded run costs %.2fx a plain run)@."
    (disabled_rate /. enabled_rate)
    (plain_rate /. recorded_rate)

(* ------------------------------ main ------------------------------ *)

let experiments =
  [
    ("fig5", fig5);
    ("table3", table3);
    ("table4", table4);
    ("campaign", campaign);
    ("ablation", ablation);
    ("testtime", testtime);
    ("rtl", rtl);
    ("sim", sim);
    ("journal", journal);
    ("sat", sat);
    ("timing", timing);
    ("json", json);
  ]

let () =
  jobs := T.Dpool.default_jobs ();
  let set_jobs s =
    match int_of_string_opt s with
    | Some n -> jobs := max 1 n
    | None ->
        Format.printf "--jobs expects an integer, got %S@." s;
        exit 1
  in
  let set_trace path =
    T.Trace.enable ();
    at_exit (fun () -> T.Trace.write_file path)
  in
  let set_min_speedup s =
    match float_of_string_opt s with
    | Some x -> min_speedup := x
    | None ->
        Format.printf "--min-speedup expects a number, got %S@." s;
        exit 1
  in
  let set_max_inconclusive s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> max_inconclusive := n
    | _ ->
        Format.printf
          "--max-inconclusive expects a non-negative integer, got %S@." s;
        exit 1
  in
  let set_max_ilp_warm s =
    match float_of_string_opt s with
    | Some x when x > 0.0 -> max_ilp_warm_seconds := x
    | _ ->
        Format.printf "--max-ilp-warm-seconds expects a positive number, got %S@." s;
        exit 1
  in
  let set_bench s =
    bench_filter :=
      List.filter (fun b -> b <> "") (String.split_on_char ',' s)
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | [ "--jobs" ] ->
        Format.printf "--jobs expects an integer argument@.";
        exit 1
    | "--jobs" :: n :: rest ->
        set_jobs n;
        parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        set_jobs (String.sub a 7 (String.length a - 7));
        parse acc rest
    | [ "--trace" ] ->
        Format.printf "--trace expects a file argument@.";
        exit 1
    | "--trace" :: path :: rest ->
        set_trace path;
        parse acc rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--trace=" ->
        set_trace (String.sub a 8 (String.length a - 8));
        parse acc rest
    | [ "--min-speedup" ] ->
        Format.printf "--min-speedup expects a number argument@.";
        exit 1
    | "--min-speedup" :: x :: rest ->
        set_min_speedup x;
        parse acc rest
    | a :: rest when String.length a > 14 && String.sub a 0 14 = "--min-speedup=" ->
        set_min_speedup (String.sub a 14 (String.length a - 14));
        parse acc rest
    | [ "--max-inconclusive" ] ->
        Format.printf "--max-inconclusive expects an integer argument@.";
        exit 1
    | "--max-inconclusive" :: n :: rest ->
        set_max_inconclusive n;
        parse acc rest
    | a :: rest
      when String.length a > 19 && String.sub a 0 19 = "--max-inconclusive=" ->
        set_max_inconclusive (String.sub a 19 (String.length a - 19));
        parse acc rest
    | [ "--max-ilp-warm-seconds" ] ->
        Format.printf "--max-ilp-warm-seconds expects a number argument@.";
        exit 1
    | "--max-ilp-warm-seconds" :: x :: rest ->
        set_max_ilp_warm x;
        parse acc rest
    | a :: rest
      when String.length a > 23 && String.sub a 0 23 = "--max-ilp-warm-seconds=" ->
        set_max_ilp_warm (String.sub a 23 (String.length a - 23));
        parse acc rest
    | [ "--bench" ] ->
        Format.printf "--bench expects a comma-separated benchmark list@.";
        exit 1
    | "--bench" :: b :: rest ->
        set_bench b;
        parse acc rest
    | a :: rest when String.length a > 8 && String.sub a 0 8 = "--bench=" ->
        set_bench (String.sub a 8 (String.length a - 8));
        parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let to_run =
    match args with
    | [] ->
        [
          "fig5"; "table3"; "table4"; "campaign"; "ablation"; "testtime"; "rtl";
          "timing";
        ]
    | l -> l
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Format.printf "unknown experiment %S (known: %s)@." name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    to_run
