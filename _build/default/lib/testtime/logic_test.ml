module Netlist = Thr_gates.Netlist
module Sim = Thr_gates.Sim
module Prng = Thr_util.Prng

type vector = (string * bool) list

let random_vectors ~prng nl n =
  let names = Netlist.input_names nl in
  List.init n (fun _ -> List.map (fun nm -> (nm, Prng.bool prng)) names)

type profile = {
  nets : Netlist.net array;
  one_probability : float array;
}

let internal_nets nl =
  Netlist.finalise nl;
  Netlist.nets_in_order nl
  |> Array.to_list
  |> List.filter (fun net ->
         match Netlist.driver nl net with
         | Netlist.D_input _ | Netlist.D_const _ -> false
         | _ -> true)
  |> Array.of_list

let signal_probabilities ~prng ?(samples = 512) nl =
  let nets = internal_nets nl in
  let ones = Array.make (Array.length nets) 0 in
  let sim = Sim.create nl in
  let names = Netlist.input_names nl in
  for _ = 1 to samples do
    List.iter (fun nm -> Sim.set_input sim nm (Prng.bool prng)) names;
    Sim.clock sim;
    Array.iteri (fun i net -> if Sim.peek sim net then ones.(i) <- ones.(i) + 1) nets
  done;
  {
    nets;
    one_probability =
      Array.map (fun c -> float_of_int c /. float_of_int samples) ones;
  }

let rare_nodes profile ~theta =
  let acc = ref [] in
  Array.iteri
    (fun i net ->
      let p1 = profile.one_probability.(i) in
      if p1 < theta then acc := (net, true) :: !acc
      else if 1.0 -. p1 < theta then acc := (net, false) :: !acc)
    profile.nets;
  List.rev !acc

let apply_vector sim vector =
  List.iter (fun (nm, b) -> Sim.set_input sim nm b) vector;
  Sim.clock sim

let n_detect_count nl rare vectors =
  let sim = Sim.create nl in
  let counts = Array.make (List.length rare) 0 in
  List.iter
    (fun v ->
      Sim.reset sim;
      apply_vector sim v;
      List.iteri
        (fun i (net, rare_value) ->
          if Sim.peek sim net = rare_value then counts.(i) <- counts.(i) + 1)
        rare)
    vectors;
  counts

(* score = sum over rare nodes of min(hits, n_target) — MERO's objective *)
let score ~n_target counts =
  Array.fold_left (fun acc c -> acc + min c n_target) 0 counts

let mero_refine ~prng ?(rounds = 2000) ?(n_target = 10) nl rare base =
  if rare = [] || base = [] then base
  else begin
    let sim = Sim.create nl in
    let hits_of vector =
      Sim.reset sim;
      apply_vector sim vector;
      List.map (fun (net, rv) -> Sim.peek sim net = rv) rare
    in
    (* counts per rare node across the evolving test set *)
    let counts = Array.make (List.length rare) 0 in
    let record vector =
      List.iteri (fun i hit -> if hit then counts.(i) <- counts.(i) + 1) (hits_of vector)
    in
    let kept = ref (List.rev base) in
    List.iter record base;
    let vectors = Array.of_list base in
    for _ = 1 to rounds do
      let v = Prng.pick prng vectors in
      (* flip a couple of random bits *)
      let v' =
        List.map
          (fun (nm, b) -> (nm, if Prng.int prng 8 = 0 then not b else b))
          v
      in
      let before = score ~n_target counts in
      let hits = hits_of v' in
      let gain =
        List.fold_left
          (fun (i, acc) hit ->
            let acc =
              if hit && counts.(i) < n_target then acc + 1 else acc
            in
            (i + 1, acc))
          (0, 0) hits
        |> snd
      in
      if gain > 0 then begin
        List.iteri (fun i hit -> if hit then counts.(i) <- counts.(i) + 1) hits;
        kept := v' :: !kept;
        ignore before
      end
    done;
    List.rev !kept
  end

let detect ~golden ~suspect vectors =
  let gsim = Sim.create golden in
  let ssim = Sim.create suspect in
  let outputs = Netlist.output_names golden in
  List.exists
    (fun v ->
      Sim.reset gsim;
      Sim.reset ssim;
      apply_vector gsim v;
      apply_vector ssim v;
      List.exists (fun o -> Sim.output gsim o <> Sim.output ssim o) outputs)
    vectors
