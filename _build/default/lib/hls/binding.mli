(** Bindings: the vendor chosen for every operation copy.

    A binding maps each copy to the vendor whose IP core executes it; the
    core's type is determined by the operation's kind.  Concrete instances
    are not chosen by the optimisers — the minimal instance count of a
    [(vendor, type)] pair equals its peak per-step concurrency (one core
    executes at most one operation per cycle, eq. 16), and {!instances}
    computes exactly that.  {!instance_assignment} then fixes a concrete,
    deterministic core for every copy, which the run-time engine uses. *)

type t

val make : Spec.t -> Thr_iplib.Vendor.t array -> t
(** [make spec vendors] wraps an array indexed by {!Copy.index}.
    @raise Invalid_argument on a length mismatch. *)

val vendor : t -> int -> Thr_iplib.Vendor.t
(** Vendor of the copy with the given dense index. *)

val vendor_of : Spec.t -> t -> Copy.t -> Thr_iplib.Vendor.t

val vendors : t -> Thr_iplib.Vendor.t array
(** The underlying array (copy). *)

val check_types : Spec.t -> t -> string list
(** Copies bound to a vendor that does not offer the required type. *)

val licences : Spec.t -> t -> (Thr_iplib.Vendor.t * Thr_iplib.Iptype.t) list
(** Distinct [(vendor, type)] licences the binding purchases (the δ of
    eq. 12), sorted. *)

val instances :
  Spec.t -> Schedule.t -> t -> (Thr_iplib.Vendor.t * Thr_iplib.Iptype.t * int) list
(** Minimal number of core instances per licence: the peak number of
    same-licence copies scheduled in one step. *)

val instance_assignment : Spec.t -> Schedule.t -> t -> int array
(** A concrete core for every copy: entry [idx] is the instance index
    (within the copy's licence) executing that copy, consistent with
    {!instances} — no instance runs two copies in one step. *)
