lib/opt/endurance.ml: Array List Option Printf Stdlib Thr_dfg Thr_hls Thr_iplib
