lib/gates/netlist.ml: Array List Printf Queue
