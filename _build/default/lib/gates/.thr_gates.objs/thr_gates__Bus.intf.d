lib/gates/bus.mli: Netlist
