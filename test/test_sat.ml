(* Tests for the SAT subsystem: the CDCL solver against a brute-force
   oracle, the CNF encoder against the packed simulator, and the BMC
   unroller against hand-computed reachability depths. *)

module Netlist = Thr_gates.Netlist
module Bus = Thr_gates.Bus
module Packed = Thr_gates.Packed
module Circuits = Thr_trojan.Circuits
module Solver = Thr_sat.Solver
module Cnf = Thr_sat.Cnf
module Bmc = Thr_sat.Bmc

let result : Solver.result Alcotest.testable =
  Alcotest.testable
    (fun ppf r ->
      Format.pp_print_string ppf
        (match r with
        | Solver.Sat -> "Sat"
        | Solver.Unsat -> "Unsat"
        | Solver.Unknown -> "Unknown"))
    ( = )

(* ----------------------------- solver ------------------------------ *)

let test_trivial_sat () =
  let s = Solver.create () in
  let x = Solver.new_var s and y = Solver.new_var s in
  Solver.add_clause s [ x; y ];
  Solver.add_clause s [ -x; y ];
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "y true" true (Solver.value s y)

let test_unit_propagation () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  let c = Solver.new_var s in
  Solver.add_clause s [ a ];
  Solver.add_clause s [ -a; b ];
  Solver.add_clause s [ -b; c ];
  Alcotest.check result "sat" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "a" true (Solver.value s a);
  Alcotest.(check bool) "b" true (Solver.value s b);
  Alcotest.(check bool) "c" true (Solver.value s c)

let test_trivial_unsat () =
  let s = Solver.create () in
  let x = Solver.new_var s in
  Solver.add_clause s [ x ];
  Solver.add_clause s [ -x ];
  Alcotest.(check bool) "ok cleared" false (Solver.ok s);
  Alcotest.check result "unsat" Solver.Unsat (Solver.solve s)

let test_empty_clause () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Solver.add_clause s [];
  Alcotest.(check bool) "ok cleared" false (Solver.ok s);
  Alcotest.check result "unsat" Solver.Unsat (Solver.solve s)

(* PHP(h+1, h): h+1 pigeons in h holes — classically hard for resolution
   at scale, decided instantly at this size, and a good workout for
   conflict analysis. *)
let pigeonhole holes =
  let s = Solver.create () in
  let v = Array.init (holes + 1) (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to holes do
    Solver.add_clause s (Array.to_list v.(p))
  done;
  for h = 0 to holes - 1 do
    for p = 0 to holes do
      for q = p + 1 to holes do
        Solver.add_clause s [ -v.(p).(h); -v.(q).(h) ]
      done
    done
  done;
  s

let test_pigeonhole_unsat () =
  Alcotest.check result "php(5,4)" Solver.Unsat (Solver.solve (pigeonhole 4));
  Alcotest.check result "php(7,6)" Solver.Unsat (Solver.solve (pigeonhole 6))

let test_assumptions_incremental () =
  let s = Solver.create () in
  let x = Solver.new_var s and y = Solver.new_var s in
  Solver.add_clause s [ x; y ];
  Alcotest.check result "x,y free" Solver.Sat (Solver.solve s);
  Alcotest.check result "assume -x" Solver.Sat
    (Solver.solve ~assumptions:[ -x ] s);
  Alcotest.(check bool) "y forced" true (Solver.value s y);
  Alcotest.check result "assume -x -y" Solver.Unsat
    (Solver.solve ~assumptions:[ -x; -y ] s);
  Alcotest.(check bool) "still ok" true (Solver.ok s);
  (* add a clause between calls: the solver stays incremental *)
  Solver.add_clause s [ -y ];
  Alcotest.check result "now x forced" Solver.Sat (Solver.solve s);
  Alcotest.(check bool) "x" true (Solver.value s x);
  Alcotest.check result "assume -x now unsat" Solver.Unsat
    (Solver.solve ~assumptions:[ -x ] s);
  Alcotest.check result "recovers" Solver.Sat (Solver.solve s)

let test_budget_unknown () =
  let s = pigeonhole 6 in
  Alcotest.check result "starved" Solver.Unknown (Solver.solve ~max_steps:1 s);
  (* the same solver finishes the job when the budget is lifted *)
  Alcotest.check result "finishes" Solver.Unsat (Solver.solve s)

let test_bad_literals () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Alcotest.check_raises "zero" (Invalid_argument "Solver: literal 0 out of range")
    (fun () -> Solver.add_clause s [ 0 ]);
  Alcotest.check_raises "unallocated"
    (Invalid_argument "Solver: literal 2 out of range") (fun () ->
      Solver.add_clause s [ 2 ])

(* Oracle check: random small CNFs against exhaustive enumeration. *)
let solver_matches_brute_force =
  QCheck.Test.make ~name:"solver matches brute force on random CNF" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size
           Gen.(int_range 0 30)
           (list_of_size Gen.(int_range 0 4) (int_range 0 1000))))
    (fun (n, raw) ->
      let clauses =
        List.map
          (List.map (fun k ->
               let v = (k mod n) + 1 in
               if k mod 2 = 0 then v else -v))
          raw
      in
      let sat_under m =
        List.for_all
          (fun c ->
            List.exists
              (fun l ->
                let bit = m land (1 lsl (abs l - 1)) <> 0 in
                if l > 0 then bit else not bit)
              c)
          clauses
      in
      let brute = ref false in
      for m = 0 to (1 lsl n) - 1 do
        if sat_under m then brute := true
      done;
      let s = Solver.create () in
      for _ = 1 to n do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Unknown -> QCheck.Test.fail_report "unbounded solve was Unknown"
      | Solver.Unsat ->
          if !brute then
            QCheck.Test.fail_report "solver Unsat but brute force found a model"
          else true
      | Solver.Sat ->
          if not !brute then
            QCheck.Test.fail_report "solver Sat but brute force found none"
          else begin
            (* and the reported model must actually satisfy the clauses *)
            let m = ref 0 in
            for v = 1 to n do
              if Solver.value s v then m := !m lor (1 lsl (v - 1))
            done;
            if sat_under !m then true
            else QCheck.Test.fail_report "reported model does not satisfy CNF"
          end)

(* ------------------------------- cnf -------------------------------- *)

(* The same random-netlist script as test_gates: gates over a growing
   net pool, dangling nets OR'd into a sink output. *)
let random_netlist script =
  let nl = Netlist.create ~name:"rand" in
  let nets = ref [| Netlist.input nl "a"; Netlist.input nl "b" |] in
  let push n = nets := Array.append !nets [| n |] in
  List.iter
    (fun (kind, i, j) ->
      let pick k = !nets.(k mod Array.length !nets) in
      let x = pick i and y = pick j in
      push
        (match kind mod 8 with
        | 0 -> Netlist.and_ nl x y
        | 1 -> Netlist.or_ nl x y
        | 2 -> Netlist.xor_ nl x y
        | 3 -> Netlist.nand_ nl x y
        | 4 -> Netlist.nor_ nl x y
        | 5 -> Netlist.not_ nl x
        | 6 -> Netlist.mux nl ~sel:x ~t0:y ~t1:(pick (i + j))
        | _ -> Netlist.dff nl ~init:(i mod 2 = 0) x))
    script;
  let fo = Netlist.fanout nl in
  let dangling =
    Array.to_list !nets |> List.filter (fun n -> fo.(Netlist.net_index n) = 0)
  in
  Netlist.output nl "sink" (Netlist.or_list nl dangling);
  Netlist.finalise nl;
  nl

(* The encoder's defining property: fix the frame's inputs with
   assumptions and every in-cone variable must agree with the packed
   simulator's settle of the same inputs over the power-on state. *)
let cnf_matches_packed =
  QCheck.Test.make ~name:"Cnf.of_cone models agree with Packed settle"
    ~count:120
    QCheck.(
      triple
        (list_of_size
           Gen.(int_range 1 40)
           (triple (int_bound 1000) (int_bound 1000) (int_bound 1000)))
        bool bool)
    (fun (script, va, vb) ->
      let nl = random_netlist script in
      let root = Netlist.find_output nl "sink" in
      let s = Solver.create () in
      let frame = Cnf.of_cone s nl ~roots:[ root ] in
      let input_val = function "a" -> va | _ -> vb in
      let assumptions =
        Array.to_list (Cnf.inputs frame)
        |> List.filter_map (fun (nm, v) ->
               if v = 0 then None
               else Some (if input_val nm then v else -v))
      in
      (match Solver.solve ~assumptions s with
      | Solver.Sat -> ()
      | _ -> QCheck.Test.fail_report "fully-driven cone must be Sat");
      let sim = Packed.create nl in
      Packed.reset sim;
      Packed.set_input sim "a" (if va then 1 else 0);
      Packed.set_input sim "b" (if vb then 1 else 0);
      Packed.settle sim;
      Array.iter
        (fun net ->
          let v = Cnf.var frame net in
          if v <> 0 then begin
            let want = Packed.peek_lane sim net 0 in
            if Solver.value s v <> want then
              QCheck.Test.fail_reportf "net %d: cnf=%b packed=%b"
                (Netlist.net_index net) (Solver.value s v) want
          end)
        (Netlist.nets_in_order nl);
      true)

(* ------------------------------- bmc -------------------------------- *)

(* A 4-bit free-running counter reaches 12 at frame 13 (frame f shows
   the state after f-1 clock edges) and not a cycle earlier. *)
let counter_netlist () =
  let nl = Netlist.create ~name:"cnt" in
  let enable = Netlist.const nl true in
  let c = Bus.counter nl ~width:4 ~enable in
  let hit = Bus.eq_const nl c 12 in
  Netlist.output nl "hit" hit;
  Netlist.finalise nl;
  (nl, Netlist.find_output nl "hit")

let test_bmc_counter_unreachable () =
  let nl, hit = counter_netlist () in
  match Bmc.check_net ~bound:8 nl ~net:hit ~value:true with
  | Bmc.Unreachable 8 -> ()
  | Bmc.Unreachable k -> Alcotest.failf "unreachable at wrong bound %d" k
  | Bmc.Reachable w -> Alcotest.failf "reachable at cycle %d?" w.Bmc.w_cycle
  | Bmc.Inconclusive _ -> Alcotest.fail "inconclusive without a budget"

let test_bmc_counter_reachable () =
  let nl, hit = counter_netlist () in
  match Bmc.check_net ~bound:13 nl ~net:hit ~value:true with
  | Bmc.Reachable w ->
      Alcotest.(check int) "exact depth" 13 w.Bmc.w_cycle;
      Alcotest.(check bool) "witness replays" true (Bmc.replay nl w)
  | _ -> Alcotest.fail "count 12 must be reachable within 13 cycles"

let test_bmc_budget_inconclusive () =
  let nl, hit = counter_netlist () in
  match Bmc.check_net ~bound:8 ~budget:1 nl ~net:hit ~value:true with
  | Bmc.Inconclusive _ -> ()
  | _ -> Alcotest.fail "a 1-step budget cannot decide anything"

(* The low value is immediate: frame 1, all-zero state. *)
let test_bmc_trivially_low () =
  let nl, hit = counter_netlist () in
  match Bmc.check_net ~bound:8 nl ~net:hit ~value:false with
  | Bmc.Reachable w ->
      Alcotest.(check int) "frame 1" 1 w.Bmc.w_cycle;
      Alcotest.(check bool) "replays" true (Bmc.replay nl w)
  | _ -> Alcotest.fail "low must be reachable at frame 1"

(* Fig. 2(b): the registered consecutive-match counter with threshold 2
   raises T at frame 3 — two matching clocked cycles, observed before
   the third latch — and provably not earlier. *)
let test_bmc_fig2b_trigger () =
  let h =
    Circuits.fig2b ~width:8 ~a_pattern:0xA5 ~b_pattern:0x5A ~mask:0xFF
      ~threshold:2 ~payload_mask:0xFF
  in
  let nl = h.Circuits.netlist in
  let t = h.Circuits.trigger_net in
  (match Bmc.check_net ~bound:2 nl ~net:t ~value:true with
  | Bmc.Unreachable 2 -> ()
  | _ -> Alcotest.fail "threshold-2 trigger must be quiet for 2 frames");
  match Bmc.check_net ~bound:8 nl ~net:t ~value:true with
  | Bmc.Reachable w ->
      Alcotest.(check int) "fires at frame 3" 3 w.Bmc.w_cycle;
      Alcotest.(check bool) "witness replays" true (Bmc.replay nl w);
      let d = Bmc.describe w in
      Alcotest.(check bool) "describe mentions cycle" true
        (String.length d > 0
        &&
        let sub = "cycle 3" in
        let n = String.length d and m = String.length sub in
        let found = ref false in
        for i = 0 to n - m do
          if String.sub d i m = sub then found := true
        done;
        !found)
  | _ -> Alcotest.fail "threshold-2 trigger must fire by frame 8"

(* A corrupted witness must not replay: soundness of the replay gate. *)
let test_bmc_replay_rejects_bogus () =
  let h =
    Circuits.fig2b ~width:8 ~a_pattern:0xA5 ~b_pattern:0x5A ~mask:0xFF
      ~threshold:2 ~payload_mask:0xFF
  in
  let nl = h.Circuits.netlist in
  match Bmc.check_net ~bound:8 nl ~net:h.Circuits.trigger_net ~value:true with
  | Bmc.Reachable w ->
      let scrambled =
        {
          w with
          Bmc.w_inputs =
            Array.map (List.map (fun (nm, b) -> (nm, not b))) w.Bmc.w_inputs;
        }
      in
      Alcotest.(check bool) "scrambled witness fails" false
        (Bmc.replay nl scrambled)
  | _ -> Alcotest.fail "trigger must be reachable"

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "assumptions + incremental" `Quick
            test_assumptions_incremental;
          Alcotest.test_case "budget -> Unknown" `Quick test_budget_unknown;
          Alcotest.test_case "bad literals" `Quick test_bad_literals;
          QCheck_alcotest.to_alcotest solver_matches_brute_force;
        ] );
      ("cnf", [ QCheck_alcotest.to_alcotest cnf_matches_packed ]);
      ( "bmc",
        [
          Alcotest.test_case "counter unreachable at 8" `Quick
            test_bmc_counter_unreachable;
          Alcotest.test_case "counter reachable at 13" `Quick
            test_bmc_counter_reachable;
          Alcotest.test_case "budget inconclusive" `Quick
            test_bmc_budget_inconclusive;
          Alcotest.test_case "trivially low" `Quick test_bmc_trivially_low;
          Alcotest.test_case "fig2b trigger depth" `Quick
            test_bmc_fig2b_trigger;
          Alcotest.test_case "replay rejects bogus witness" `Quick
            test_bmc_replay_rejects_bogus;
        ] );
    ]
