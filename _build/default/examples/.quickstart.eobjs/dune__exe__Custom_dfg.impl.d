examples/custom_dfg.ml: Format List Printf String Trojan_hls
