lib/runtime/rtl.mli: Engine Thr_dfg Thr_gates Thr_hls
