(* Tests for Thr_obs: metrics registry (bucket boundaries, counter
   atomicity under Dpool), span tracer (nesting, exception unwinding,
   Chrome JSON validity round-tripped through Thr_util.Json.parse) and
   the structured logger. *)

module Metrics = Thr_obs.Metrics
module Trace = Thr_obs.Trace
module Log = Thr_obs.Log
module Journal = Thr_obs.Journal
module Recorder = Thr_obs.Recorder
module Vcd = Thr_obs.Vcd
module Json = Thr_util.Json
module Dpool = Thr_util.Dpool

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ----------------------------- metrics ----------------------------- *)

let test_counter_basics () =
  let c = Metrics.counter "test_counter_basics_total" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "42" 42 (Metrics.counter_value c);
  (* same name interns to the same counter *)
  let c' = Metrics.counter "test_counter_basics_total" in
  Metrics.incr c';
  Alcotest.(check int) "shared" 43 (Metrics.counter_value c)

let test_name_canonicalisation () =
  (* the ISSUE-style dotted names land on the Prometheus charset *)
  let c = Metrics.counter "test.dotted-name total" in
  Metrics.incr c;
  let prom = Metrics.to_prometheus () in
  Alcotest.(check bool) "canonical name rendered" true
    (let re = "test_dotted_name_total 1" in
     let rec find i =
       i + String.length re <= String.length prom
       && (String.sub prom i (String.length re) = re || find (i + 1))
     in
     find 0)

let test_kind_clash () =
  ignore (Metrics.gauge "test_kind_clash");
  Alcotest.(check bool) "counter over gauge rejected" true
    (raises_invalid (fun () -> Metrics.counter "test_kind_clash"));
  Alcotest.(check bool) "empty name rejected" true
    (raises_invalid (fun () -> Metrics.counter ""));
  Alcotest.(check bool) "bad char rejected" true
    (raises_invalid (fun () -> Metrics.counter "a{b}"))

let test_counter_atomicity_dpool () =
  let c = Metrics.counter "test_atomicity_total" in
  let per_task = 25_000 in
  let results =
    Dpool.run ~jobs:4 (fun pool ->
        Dpool.map pool
          (fun _ ->
            for _ = 1 to per_task do
              Metrics.incr c
            done;
            ())
          [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "all tasks ran" 4 (List.length results);
  Alcotest.(check int) "no lost increments" (4 * per_task)
    (Metrics.counter_value c)

let test_histogram_buckets () =
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 5.0 |] "test_hist_ms" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.5 ];
  (* le semantics: the boundary value belongs to its own bucket *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "per-bucket counts"
    [ (1.0, 2); (2.0, 2); (5.0, 1); (infinity, 1) ]
    (Metrics.bucket_counts h);
  Alcotest.(check int) "count" 6 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 17.5 (Metrics.histogram_sum h);
  Alcotest.(check bool) "non-increasing buckets rejected" true
    (raises_invalid (fun () ->
         Metrics.histogram ~buckets:[| 2.0; 1.0 |] "test_hist_bad"))

let test_prometheus_render () =
  let c = Metrics.counter "test_prom_total" in
  Metrics.add c 7;
  let h = Metrics.histogram ~buckets:[| 1.0 |] "test_prom_ms" in
  Metrics.observe h 0.5;
  Metrics.observe h 3.0;
  let prom = Metrics.to_prometheus () in
  let contains needle =
    let n = String.length needle and m = String.length prom in
    let rec go i = i + n <= m && (String.sub prom i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line -> Alcotest.(check bool) line true (contains line))
    [
      "# TYPE test_prom_total counter";
      "test_prom_total 7";
      "# TYPE test_prom_ms histogram";
      "test_prom_ms_bucket{le=\"1\"} 1";
      (* cumulative: the +Inf bucket counts everything *)
      "test_prom_ms_bucket{le=\"+Inf\"} 2";
      "test_prom_ms_sum 3.5";
      "test_prom_ms_count 2";
    ]

let test_metrics_json_and_snapshot () =
  let c = Metrics.counter "test_json_total" in
  Metrics.add c 3;
  (match Json.member "test_json_total" (Metrics.to_json ()) with
  | Some (Json.Int 3) -> ()
  | other ->
      Alcotest.failf "to_json: expected Int 3, got %s"
        (match other with Some j -> Json.to_string j | None -> "absent"));
  let before = Metrics.snapshot () in
  Metrics.add c 5;
  let after = Metrics.snapshot () in
  let v l = List.assoc "test_json_total" l in
  Alcotest.(check (float 1e-9)) "snapshot delta" 5.0 (v after -. v before)

let test_default_buckets () =
  let b = Metrics.default_buckets in
  Alcotest.(check bool) "includes 5000" true (Array.exists (( = ) 5000.0) b);
  let increasing = ref true in
  for i = 1 to Array.length b - 1 do
    if b.(i) <= b.(i - 1) then increasing := false
  done;
  Alcotest.(check bool) "strictly increasing" true !increasing

(* Cumulative Prometheus bucket lines must be monotonically
   non-decreasing in the boundary order, and the +Inf bucket must equal
   _count — for any observation list and any (sorted, distinct) bucket
   boundaries. *)
let prom_lines_for name prom =
  String.split_on_char '\n' prom
  |> List.filter_map (fun line ->
         let pre = name ^ "_bucket{le=\"" in
         if String.length line > String.length pre
            && String.sub line 0 (String.length pre) = pre
         then
           match String.index_opt line '}' with
           | Some i ->
               let le =
                 String.sub line
                   (String.length pre)
                   (i - 1 - String.length pre)
               in
               let v =
                 int_of_string
                   (String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)))
               in
               Some (le, v)
           | None -> None
         else None)

let prom_value name prom =
  String.split_on_char '\n' prom
  |> List.find_map (fun line ->
         let pre = name ^ " " in
         if String.length line > String.length pre
            && String.sub line 0 (String.length pre) = pre
         then
           int_of_string_opt
             (String.trim
                (String.sub line (String.length pre)
                   (String.length line - String.length pre)))
         else None)

let qcheck_prometheus_cumulative =
  let id = ref 0 in
  QCheck.Test.make ~name:"prometheus buckets cumulative and +Inf = _count"
    ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 30) (float_bound_inclusive 120.0))
        (list_of_size Gen.(int_range 1 6) (float_range 0.5 100.0)))
    (fun (obs, raw_bounds) ->
      let bounds =
        List.sort_uniq compare raw_bounds |> Array.of_list
      in
      incr id;
      let name = Printf.sprintf "qcheck_prom_hist_%d" !id in
      let h = Metrics.histogram ~buckets:bounds name in
      List.iter (Metrics.observe h) obs;
      let prom = Metrics.to_prometheus () in
      let lines = prom_lines_for name prom in
      if List.length lines <> Array.length bounds + 1 then
        QCheck.Test.fail_reportf "expected %d bucket lines, got %d"
          (Array.length bounds + 1)
          (List.length lines);
      let values = List.map snd lines in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      let inf =
        match List.rev lines with
        | ("+Inf", v) :: _ -> v
        | _ -> QCheck.Test.fail_reportf "last bucket is not +Inf"
      in
      monotone values
      && inf = List.length obs
      && prom_value (name ^ "_count") prom = Some (List.length obs))

(* ------------------------------ trace ------------------------------ *)

let test_trace_ring_bound () =
  Trace.enable ();
  Trace.set_capacity 8;
  Trace.clear ();
  Journal.clear ();
  (* journal empty, so its provider adds nothing to the export *)
  for i = 1 to 20 do
    Trace.instant (Printf.sprintf "ev%d" i) ()
  done;
  Trace.disable ();
  let exported =
    match Json.member "traceEvents" (Trace.export ()) with
    | Some (Json.List evs) -> evs
    | _ -> []
  in
  Alcotest.(check int) "ring keeps the newest 8" 8 (List.length exported);
  Alcotest.(check int) "12 dropped" 12 (Trace.dropped ());
  (* oldest-drop: the survivors are the last 8 instants, in order *)
  Alcotest.(check (list string)) "newest events survive"
    (List.init 8 (fun i -> Printf.sprintf "ev%d" (i + 13)))
    (List.filter_map (Json.mem_str "name") exported);
  Trace.set_capacity 262_144;
  Trace.clear ()

let test_trace_disabled_is_noop () =
  Trace.disable ();
  Trace.clear ();
  let r = Trace.with_span "ghost" (fun () -> 17) in
  Alcotest.(check int) "value through" 17 r;
  Trace.instant "ghost.instant" ();
  Alcotest.(check int) "nothing recorded" 0 (Trace.completed ())

let test_trace_nesting () =
  Trace.enable ();
  Trace.clear ();
  let seen = ref [] in
  let r =
    Trace.with_span "outer" ~args:[ ("k", "v") ] (fun () ->
        seen := Trace.depth () :: !seen;
        let x =
          Trace.with_span "inner" (fun () ->
              seen := Trace.depth () :: !seen;
              21)
        in
        x * 2)
  in
  Trace.disable ();
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check (list int)) "depths inner-first" [ 2; 1 ] !seen;
  Alcotest.(check int) "stack unwound" 0 (Trace.depth ());
  Alcotest.(check int) "two spans" 2 (Trace.completed ())

let test_trace_exception_unwinds () =
  Trace.enable ();
  Trace.clear ();
  (match Trace.with_span "boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Trace.disable ();
  Alcotest.(check int) "stack unwound after raise" 0 (Trace.depth ());
  Alcotest.(check int) "span still recorded" 1 (Trace.completed ())

let test_trace_chrome_json_roundtrip () =
  Trace.enable ();
  Trace.clear ();
  ignore
    (Trace.with_span "parent" (fun () ->
         Trace.instant "mark" ~args:[ ("n", "1") ] ();
         Trace.with_span "child" (fun () -> 1)));
  Trace.disable ();
  (* the export must survive our own strict RFC 8259 parser *)
  let text = Json.to_string (Trace.export ()) in
  match Json.parse text with
  | Error e -> Alcotest.failf "trace JSON does not re-parse: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check int) "three events" 3 (List.length evs);
          let complete =
            List.filter (fun e -> Json.mem_str "ph" e = Some "X") evs
          in
          Alcotest.(check int) "two complete spans" 2 (List.length complete);
          List.iter
            (fun e ->
              Alcotest.(check bool) "has name" true (Json.mem_str "name" e <> None);
              Alcotest.(check bool) "has pid" true (Json.mem_int "pid" e <> None);
              Alcotest.(check bool) "has tid" true (Json.mem_int "tid" e <> None);
              let ts = Option.bind (Json.member "ts" e) Json.to_float in
              Alcotest.(check bool) "ts >= 0" true
                (match ts with Some t -> t >= 0.0 | None -> false);
              if Json.mem_str "ph" e = Some "X" then
                let dur = Option.bind (Json.member "dur" e) Json.to_float in
                Alcotest.(check bool) "dur >= 0" true
                  (match dur with Some d -> d >= 0.0 | None -> false))
            evs;
          (* the child completes before the parent, so it is recorded
             first; its interval nests inside the parent's *)
          let span name =
            let e =
              List.find (fun e -> Json.mem_str "name" e = Some name) complete
            in
            let f k = Option.get (Option.bind (Json.member k e) Json.to_float) in
            (f "ts", f "ts" +. f "dur")
          in
          let c0, c1 = span "child" and p0, p1 = span "parent" in
          (* reconstructing end = ts + dur from serialized floats can
             drift a few ulps when both spans close on the same clock
             tick; allow rounding-level slack *)
          let eps = 1e-3 in
          Alcotest.(check bool) "child within parent" true
            (p0 <= c0 +. eps && c1 <= p1 +. eps)
      | _ -> Alcotest.fail "no traceEvents list")

let test_trace_write_file () =
  Trace.enable ();
  Trace.clear ();
  ignore (Trace.with_span "filed" (fun () -> ()));
  Trace.disable ();
  let path = Filename.temp_file "thls_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.write_file path;
      let text = In_channel.with_open_text path In_channel.input_all in
      match Json.parse (String.trim text) with
      | Ok j ->
          Alcotest.(check bool) "file has events" true
            (match Json.member "traceEvents" j with
            | Some (Json.List (_ :: _)) -> true
            | _ -> false)
      | Error e -> Alcotest.failf "trace file does not parse: %s" e)

(* ----------------------------- journal ----------------------------- *)

let with_journal f =
  Journal.enable ();
  Journal.clear ();
  Fun.protect
    ~finally:(fun () ->
      Journal.disable ();
      Journal.clear ())
    f

let test_journal_basics () =
  with_journal (fun () ->
      Journal.emit ~cycle:2 ~ctx:[ ("net", "rare_n7") ]
        Journal.Trigger_candidate_active;
      Journal.emit ~cycle:5 Journal.Mismatch_detected;
      Journal.emit ~cycle:6 Journal.Recovery_started;
      Journal.emit ~cycle:9 ~lane:3 Journal.Recovery_ok;
      let evs = Journal.events () in
      Alcotest.(check int) "four events" 4 (List.length evs);
      Alcotest.(check (list int)) "seq dense from 0" [ 0; 1; 2; 3 ]
        (List.map (fun e -> e.Journal.seq) evs);
      Alcotest.(check (list string)) "kinds in order"
        [
          "Trigger_candidate_active"; "Mismatch_detected"; "Recovery_started";
          "Recovery_ok";
        ]
        (List.map (fun e -> Journal.kind_name e.Journal.kind) evs);
      Alcotest.(check (option int)) "first detection cycle" (Some 5)
        (Journal.first_detection_cycle ());
      Alcotest.(check int) "lane carried" 3
        (List.nth evs 3).Journal.lane;
      Alcotest.(check (list string)) "tail 2"
        [ "Recovery_started"; "Recovery_ok" ]
        (List.map
           (fun e -> Journal.kind_name e.Journal.kind)
           (Journal.tail 2));
      (* kind names round-trip through the wire encoding *)
      List.iter
        (fun e ->
          Alcotest.(check bool) "kind_of_name inverts kind_name" true
            (Journal.kind_of_name (Journal.kind_name e.Journal.kind)
            = Some e.Journal.kind))
        evs)

let test_journal_disabled_is_noop () =
  Journal.disable ();
  Journal.clear ();
  Journal.emit ~cycle:1 Journal.Mismatch_detected;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Journal.events ()));
  Alcotest.(check (option int)) "no detection" None
    (Journal.first_detection_cycle ())

let test_journal_json_roundtrip () =
  with_journal (fun () ->
      Journal.emit ~cycle:3 ~lane:7
        ~ctx:[ ("net", "rare_n9"); ("design", "motivational") ]
        Journal.Trigger_candidate_active;
      Journal.emit ~cycle:4 Journal.Mismatch_detected;
      let evs = Journal.events () in
      List.iter
        (fun e ->
          match Journal.event_of_json (Journal.event_to_json e) with
          | Ok e' ->
              Alcotest.(check bool) "event round-trips" true (e = e')
          | Error m -> Alcotest.failf "event_of_json: %s" m)
        evs;
      (* the whole journal document, re-parsed from its serialised text.
         The text layer rounds floats to 12 significant digits, so wall
         timestamps (~1e15 us) round-trip only approximately; every
         cycle-domain field must round-trip exactly. *)
      let text = Json.to_string (Journal.to_json ()) in
      match Result.bind (Json.parse text) Journal.events_of_json with
      | Ok evs' ->
          Alcotest.(check bool) "document round-trips" true
            (List.for_all2
               (fun a b ->
                 { a with Journal.ts_us = 0.0 }
                 = { b with Journal.ts_us = 0.0 }
                 && Float.abs (a.Journal.ts_us -. b.Journal.ts_us) < 1e5)
               evs evs')
      | Error m -> Alcotest.failf "events_of_json: %s" m)

let test_journal_bounded_drop () =
  with_journal (fun () ->
      Journal.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Journal.set_capacity 65_536)
        (fun () ->
          for c = 1 to 10 do
            Journal.emit ~cycle:c Journal.Trigger_candidate_active
          done;
          let evs = Journal.events () in
          Alcotest.(check int) "ring keeps 4" 4 (List.length evs);
          Alcotest.(check int) "6 dropped" 6 (Journal.dropped ());
          Alcotest.(check (list int)) "newest survive, oldest first"
            [ 7; 8; 9; 10 ]
            (List.map (fun e -> e.Journal.cycle) evs);
          Alcotest.(check (list int)) "seq still dense" [ 6; 7; 8; 9 ]
            (List.map (fun e -> e.Journal.seq) evs)))

let test_journal_multidomain_ordering () =
  with_journal (fun () ->
      let per_task = 1000 in
      ignore
        (Dpool.run ~jobs:4 (fun pool ->
             Dpool.map pool
               (fun lane ->
                 for c = 1 to per_task do
                   Journal.emit ~cycle:c ~lane Journal.Trigger_candidate_active
                 done)
               [ 0; 1; 2; 3 ]));
      let evs = Journal.events () in
      Alcotest.(check int) "all 4000 buffered" (4 * per_task)
        (List.length evs);
      (* seq is assigned under the journal lock: strictly increasing and
         dense even when four domains emit concurrently *)
      let ok = ref true in
      List.iteri (fun i e -> if e.Journal.seq <> i then ok := false) evs;
      Alcotest.(check bool) "seq strictly increasing and dense" true !ok;
      (* no event lost: every lane contributed its full count *)
      let counts = Array.make 4 0 in
      List.iter (fun e -> counts.(e.Journal.lane) <- counts.(e.Journal.lane) + 1) evs;
      Array.iter
        (fun n -> Alcotest.(check int) "per-lane count" per_task n)
        counts;
      match Json.member "trigger_candidate_active" (Journal.summary_json ()) with
      | Some (Json.Int n) -> Alcotest.(check int) "summary count" 4000 n
      | _ -> Alcotest.fail "summary missing trigger_candidate_active")

(* ------------------------------- vcd ------------------------------- *)

let test_vcd_roundtrip_handbuilt () =
  let wave =
    {
      Vcd.v_names = [| "clk"; "mismatch"; "rare n7" |];
      v_cycles = [| 1; 2; 3; 5 |];
      v_bits =
        [|
          [| false; false; true |];
          [| true; false; true |];
          [| true; false; true |];
          [| false; true; false |];
        |];
    }
  in
  let text = Vcd.to_string wave in
  (match Vcd.parse text with
  | Error m -> Alcotest.failf "parse: %s" m
  | Ok w ->
      Alcotest.(check (array string)) "names (sanitised)"
        [| "clk"; "mismatch"; "rare_n7" |]
        w.Vcd.v_names;
      Alcotest.(check (array int)) "cycles" wave.Vcd.v_cycles w.Vcd.v_cycles;
      Alcotest.(check bool) "bits identical" true
        (w.Vcd.v_bits = wave.Vcd.v_bits));
  Alcotest.(check bool) "empty wave rejected" true
    (raises_invalid (fun () ->
         Vcd.to_string { Vcd.v_names = [||]; v_cycles = [||]; v_bits = [||] }))

let qcheck_vcd_roundtrip =
  QCheck.Test.make ~name:"VCD round-trips random waves" ~count:100
    QCheck.(pair (int_range 1 120) (int_range 1 40))
    (fun (n_signals, n_cycles) ->
      let prng = Thr_util.Prng.create ~seed:(n_signals * 1000 + n_cycles) in
      let wave =
        {
          Vcd.v_names = Array.init n_signals (Printf.sprintf "s%d");
          v_cycles = Array.init n_cycles (fun t -> (t * 2) + 1);
          v_bits =
            Array.init n_cycles (fun _ ->
                Array.init n_signals (fun _ -> Thr_util.Prng.bool prng));
        }
      in
      match Vcd.parse (Vcd.to_string wave) with
      | Ok w -> w = wave
      | Error m -> QCheck.Test.fail_reportf "parse: %s" m)

(* ----------------------------- recorder ---------------------------- *)

let test_recorder_window () =
  let r = Recorder.create ~names:[| "a"; "b" |] ~depth:3 () in
  for c = 1 to 5 do
    Recorder.push r ~cycle:c [| c; c * 16 |]
  done;
  Alcotest.(check int) "cycles seen" 5 (Recorder.cycles_seen r);
  let w = Recorder.window r in
  Alcotest.(check (array int)) "last depth cycles" [| 3; 4; 5 |] w.Recorder.w_cycles;
  Alcotest.(check bool) "words copied, oldest first" true
    (w.Recorder.w_words = [| [| 3; 48 |]; [| 4; 64 |]; [| 5; 80 |] |]);
  (* lane extraction: bit l of each word *)
  let bits4 = Recorder.lane_bits w ~lane:4 in
  Alcotest.(check bool) "lane 4 tracks bit 4 of each word" true
    (bits4
    = [|
        [| false; true |] (* 48 *); [| false; false |] (* 64 *);
        [| false; true |] (* 80 *);
      |]);
  Alcotest.(check bool) "width mismatch rejected" true
    (raises_invalid (fun () -> Recorder.push r ~cycle:6 [| 1 |]));
  Alcotest.(check bool) "lane out of range rejected" true
    (raises_invalid (fun () -> Recorder.lane_bits w ~lane:63))

(* ------------------------------- log ------------------------------- *)

let with_captured_log level f =
  let lines = ref [] in
  Log.set_sink (Some (fun l -> lines := l :: !lines));
  let saved = Log.level () in
  Log.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      Log.set_level saved)
    (fun () -> f ());
  List.rev !lines

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_log_levels_and_format () =
  let lines =
    with_captured_log Log.Warn (fun () ->
        Log.debug "too_quiet" [];
        Log.info "still_quiet" [];
        Log.warn "heard" [ ("k", "v") ];
        Log.error "also_heard" [ ("msg", "two words") ])
  in
  Alcotest.(check int) "only warn+error pass" 2 (List.length lines);
  let warn_line = List.nth lines 0 and error_line = List.nth lines 1 in
  Alcotest.(check bool) "warn formatted" true
    (contains warn_line "level=warn event=heard k=v");
  Alcotest.(check bool) "value with space quoted" true
    (contains error_line "msg=\"two words\"");
  Alcotest.(check bool) "timestamp present" true (contains warn_line "ts=")

let test_log_level_of_string () =
  Alcotest.(check bool) "debug" true (Log.level_of_string "debug" = Some Log.Debug);
  Alcotest.(check bool) "WARN" true (Log.level_of_string "WARN" = Some Log.Warn);
  Alcotest.(check bool) "junk" true (Log.level_of_string "loud" = None)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "name canonicalisation" `Quick
            test_name_canonicalisation;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "counter atomicity (Dpool, 4 domains)" `Quick
            test_counter_atomicity_dpool;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "prometheus render" `Quick test_prometheus_render;
          Alcotest.test_case "json + snapshot deltas" `Quick
            test_metrics_json_and_snapshot;
          Alcotest.test_case "default buckets" `Quick test_default_buckets;
          QCheck_alcotest.to_alcotest qcheck_prometheus_cumulative;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_trace_disabled_is_noop;
          Alcotest.test_case "bounded ring drops oldest" `Quick
            test_trace_ring_bound;
          Alcotest.test_case "span nesting" `Quick test_trace_nesting;
          Alcotest.test_case "exception unwinds" `Quick
            test_trace_exception_unwinds;
          Alcotest.test_case "chrome JSON roundtrip" `Quick
            test_trace_chrome_json_roundtrip;
          Alcotest.test_case "write_file" `Quick test_trace_write_file;
        ] );
      ( "journal",
        [
          Alcotest.test_case "basics" `Quick test_journal_basics;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_journal_disabled_is_noop;
          Alcotest.test_case "json round-trip" `Quick
            test_journal_json_roundtrip;
          Alcotest.test_case "bounded ring drops oldest" `Quick
            test_journal_bounded_drop;
          Alcotest.test_case "seq ordering under 4 domains" `Quick
            test_journal_multidomain_ordering;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "hand-built round-trip" `Quick
            test_vcd_roundtrip_handbuilt;
          QCheck_alcotest.to_alcotest qcheck_vcd_roundtrip;
        ] );
      ( "recorder",
        [ Alcotest.test_case "ring window and lanes" `Quick test_recorder_window ] );
      ( "log",
        [
          Alcotest.test_case "levels and format" `Quick
            test_log_levels_and_format;
          Alcotest.test_case "level_of_string" `Quick test_log_level_of_string;
        ] );
    ]
