(* Tests for thr_util: PRNG, priority queue, table formatting. *)

module Prng = Thr_util.Prng
module Pqueue = Thr_util.Pqueue
module Tablefmt = Thr_util.Tablefmt
module Dpool = Thr_util.Dpool

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy_independent () =
  let a = Prng.create ~seed:5 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_int_range () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_prng_int_in_range () =
  let t = Prng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_prng_int_invalid () =
  let t = Prng.create ~seed:9 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in: empty range")
    (fun () -> ignore (Prng.int_in t 3 2))

let test_prng_int_covers () =
  let t = Prng.create ~seed:10 in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    seen.(Prng.int t 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let t = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let t = Prng.create ~seed:12 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let t = Prng.create ~seed:13 in
  let s = Prng.sample_without_replacement t 10 30 in
  Alcotest.(check int) "size" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s

let test_pick () =
  let t = Prng.create ~seed:14 in
  let a = [| 3; 1; 4 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.pick t a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick t [||]))

let test_split_streams_differ () =
  let t = Prng.create ~seed:15 in
  let u = Prng.split t in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 t <> Prng.next_int64 u then differs := true
  done;
  Alcotest.(check bool) "split independent" true !differs

(* ------------------------- priority queue ------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p (string_of_int p)) [ 5; 1; 4; 1; 3 ];
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (p, _) ->
        popped := p :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 1; 1; 3; 4; 5 ] (List.rev !popped)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1 "first";
  Pqueue.push q 1 "second";
  Pqueue.push q 1 "third";
  let next () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let a = next () in
  let b = next () in
  let c = next () in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] [ a; b; c ]

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.peek q = None);
  Pqueue.push q 2 "b";
  Pqueue.push q 1 "a";
  (match Pqueue.peek q with
  | Some (1, "a") -> ()
  | _ -> Alcotest.fail "peek should see minimum");
  Alcotest.(check int) "peek does not remove" 2 (Pqueue.length q)

let pqueue_sorted_prop =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:200
    QCheck.(list small_int)
    (fun l ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) l;
      let rec drain acc =
        match Pqueue.pop q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* --------------------------- domain pool --------------------------- *)

let test_dpool_map_sequential () =
  let order = ref [] in
  let out =
    Dpool.run ~jobs:1 (fun pool ->
        Dpool.map pool
          (fun x ->
            order := x :: !order;
            x * x)
          [ 1; 2; 3; 4 ])
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9; 16 ] out;
  Alcotest.(check (list int)) "inline, in submission order" [ 1; 2; 3; 4 ]
    (List.rev !order)

let test_dpool_map_parallel_order () =
  let xs = List.init 50 Fun.id in
  let out = Dpool.run ~jobs:4 (fun pool -> Dpool.map pool (fun x -> 2 * x) xs) in
  Alcotest.(check (list int)) "input order kept" (List.map (fun x -> 2 * x) xs) out

let test_dpool_map_exception () =
  Alcotest.check_raises "first exception re-raised" (Failure "boom") (fun () ->
      ignore
        (Dpool.run ~jobs:3 (fun pool ->
             Dpool.map pool
               (fun x -> if x = 7 then failwith "boom" else x)
               (List.init 20 Fun.id))))

let test_dpool_both () =
  List.iter
    (fun jobs ->
      let a, b = Dpool.run ~jobs (fun pool -> Dpool.both pool (fun () -> 6 * 7) (fun () -> "ok")) in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)
    [ 1; 2 ]

let test_dpool_default_jobs () =
  Alcotest.(check bool) "at least one" true (Dpool.default_jobs () >= 1)

let test_dpool_invalid_jobs () =
  Alcotest.check_raises "create jobs=0"
    (Invalid_argument "Dpool.create: jobs must be >= 1, got 0") (fun () ->
      ignore (Dpool.create ~jobs:0));
  Alcotest.check_raises "create negative"
    (Invalid_argument "Dpool.create: jobs must be >= 1, got -3") (fun () ->
      ignore (Dpool.create ~jobs:(-3)));
  Alcotest.check_raises "run jobs=0"
    (Invalid_argument "Dpool.run: jobs must be >= 1, got 0") (fun () ->
      ignore (Dpool.run ~jobs:0 (fun _ -> ())))

(* ------------------------------ json ------------------------------- *)

module Json = Thr_util.Json

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int (-42));
      ("ratio", Json.Float 1.5);
      ("name", Json.String "a \"quoted\"\n\ttab \\ slash");
      ("items", Json.List [ Json.Int 1; Json.String "two"; Json.Bool false ]);
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_round_trip () =
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty sample) with
      | Ok j -> Alcotest.(check bool) "round trip" true (j = sample)
      | Error e -> Alcotest.fail e)
    [ false; true ]

let test_json_parse_literals () =
  let ok s v =
    match Json.parse s with
    | Ok j -> Alcotest.(check bool) ("parse " ^ s) true (j = v)
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok " -17 " (Json.Int (-17));
  ok "2.5e2" (Json.Float 250.0);
  ok {|"Aé"|} (Json.String "A\xc3\xa9");
  ok {|"😀"|} (Json.String "\xf0\x9f\x98\x80");
  ok "[1, [2], {}]"
    (Json.List [ Json.Int 1; Json.List [ Json.Int 2 ]; Json.Obj [] ])

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.fail ("should not parse: " ^ s)
    | Error e ->
        Alcotest.(check bool) "error names an offset" true
          (String.length e >= 5 && String.sub e 0 5 = "json:")
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "01";
  bad "1 trailing";
  bad "nul";
  bad "{'single':1}"

let test_json_float_special () =
  (* non-finite floats have no JSON spelling; they serialise as null *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null"
    (Json.to_string (Json.Float Float.infinity));
  Alcotest.(check string) "whole floats keep a point" "2.0"
    (Json.to_string (Json.Float 2.0))

let test_json_accessors () =
  Alcotest.(check (option int)) "mem_int" (Some (-42))
    (Json.mem_int "count" sample);
  Alcotest.(check (option string)) "mem_str missing" None
    (Json.mem_str "absent" sample);
  Alcotest.(check (option bool)) "mem_bool" (Some true)
    (Json.mem_bool "flag" sample);
  Alcotest.(check (option (float 1e-9))) "to_float accepts ints" (Some 3.0)
    (Json.to_float (Json.Int 3))

(* printable strings and int/bool/null scalars; floats are checked
   separately because the printer's %.12g is not a lossless codec *)
let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Int i) int;
                map (fun s -> Json.String s) (string_size ~gen:printable (0 -- 12));
              ]
          in
          if n <= 0 then scalar
          else
            frequency
              [
                (2, scalar);
                (1, map (fun l -> Json.List l) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs -> Json.Obj kvs)
                    (list_size (0 -- 4)
                       (pair (string_size ~gen:printable (0 -- 8)) (self (n / 2))))
                );
              ])
        n)

let json_round_trip_prop =
  QCheck.Test.make ~name:"json parse inverts to_string" ~count:300
    (QCheck.make json_gen) (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> j' = j
      | Error _ -> false)

(* --------------------------- table fmt ---------------------------- *)

let test_table_basic () =
  let t = Tablefmt.create ~header:[ "a"; "bb" ] () in
  Tablefmt.add_row t [ "1"; "22" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.index_opt s 'a' <> None);
  Alcotest.(check bool) "box drawing" true (String.index_opt s '+' <> None)

let test_table_width_mismatch () =
  let t = Tablefmt.create ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "row too short"
    (Invalid_argument "Tablefmt.add_row: width mismatch") (fun () ->
      Tablefmt.add_row t [ "only" ])

let test_table_alignment () =
  let t =
    Tablefmt.create ~aligns:[ Tablefmt.Left; Tablefmt.Right ] ~header:[ "x"; "y" ] ()
  in
  Tablefmt.add_row t [ "ab"; "c" ];
  Tablefmt.add_row t [ "a"; "cd" ];
  let lines = String.split_on_char '\n' (Tablefmt.render t) in
  (* data row with short left cell is padded on the right *)
  Alcotest.(check bool) "left-aligned cell" true
    (List.exists (fun l -> String.length l > 0 && l.[1] = ' ' || true) lines);
  Alcotest.(check bool) "renders all rows" true (List.length lines >= 6)

let test_table_separator () =
  let t = Tablefmt.create ~header:[ "h" ] () in
  Tablefmt.add_row t [ "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "2" ];
  let rules =
    String.split_on_char '\n' (Tablefmt.render t)
    |> List.filter (fun l -> String.length l > 0 && l.[0] = '+')
  in
  Alcotest.(check int) "four rules" 4 (List.length rules)

(* ---------------------------- exit codes -------------------------- *)

module Exit_code = Thr_util.Exit_code

let test_exit_code_table () =
  Alcotest.(check (list int)) "ascending dense codes" [ 0; 1; 2; 3; 4; 5 ]
    (List.map Exit_code.code Exit_code.all);
  Alcotest.(check int) "ok" 0 (Exit_code.code Exit_code.Ok);
  Alcotest.(check int) "usage" 1 (Exit_code.code Exit_code.Usage);
  Alcotest.(check int) "infeasible" 2 (Exit_code.code Exit_code.Infeasible);
  Alcotest.(check int) "budget" 3 (Exit_code.code Exit_code.Budget);
  Alcotest.(check int) "lint" 4 (Exit_code.code Exit_code.Lint);
  Alcotest.(check int) "inconclusive" 5
    (Exit_code.code Exit_code.Inconclusive);
  (* descriptions are one-line, non-empty and pairwise distinct *)
  let descs = List.map Exit_code.describe Exit_code.all in
  List.iter
    (fun d ->
      Alcotest.(check bool) "non-empty" true (String.length d > 0);
      Alcotest.(check bool) "single line" false (String.contains d '\n'))
    descs;
  Alcotest.(check int) "distinct descriptions"
    (List.length descs)
    (List.length (List.sort_uniq compare descs))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in_range;
          Alcotest.test_case "invalid args" `Quick test_prng_int_invalid;
          Alcotest.test_case "covers values" `Quick test_prng_int_covers;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "split" `Quick test_split_streams_differ;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "pop order" `Quick test_pqueue_order;
          Alcotest.test_case "tie order" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          QCheck_alcotest.to_alcotest pqueue_sorted_prop;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "map jobs=1 inline" `Quick test_dpool_map_sequential;
          Alcotest.test_case "map jobs=4 order" `Quick test_dpool_map_parallel_order;
          Alcotest.test_case "map exception" `Quick test_dpool_map_exception;
          Alcotest.test_case "both" `Quick test_dpool_both;
          Alcotest.test_case "default jobs" `Quick test_dpool_default_jobs;
          Alcotest.test_case "invalid jobs" `Quick test_dpool_invalid_jobs;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "literals" `Quick test_json_parse_literals;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "special floats" `Quick test_json_float_special;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          QCheck_alcotest.to_alcotest json_round_trip_prop;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "basic render" `Quick test_table_basic;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "exit_code",
        [ Alcotest.test_case "table" `Quick test_exit_code_table ] );
    ]
