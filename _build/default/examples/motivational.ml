(* The paper's Figure 5 motivational example, end to end.

   A 5-operation DFG, the Table 1 catalogue, latency 4 (detection) + 3
   (recovery) and area 22000 — the paper reports an optimal purchasing
   cost of $4160.  Both the licence search and the literal ILP formulation
   are run, and must agree.

   Run with: dune exec examples/motivational.exe *)

module T = Trojan_hls

let () =
  let dfg = T.Benchmarks.motivational () in
  Format.printf "Figure 5 DFG:@.%s@." (T.Dfg_parse.to_string dfg);
  Format.printf "Table 1 catalogue:@.%a@." T.Catalog.pp T.Catalog.table1;
  let spec =
    T.Spec.make ~dfg ~catalog:T.Catalog.table1 ~latency_detect:4
      ~latency_recover:3 ~area_limit:22_000 ()
  in
  (match T.Optimize.run spec with
  | Ok { design; seconds; _ } ->
      Format.printf "Licence search (%.2fs):@.%a@." seconds T.Design.report design;
      let mc = T.Design.cost design in
      Format.printf "Minimum purchasing cost: $%d (paper: $4160)@.@." mc
  | Error _ -> print_endline "licence search: no design (unexpected)");
  (* the literal paper ILP (eqs. 3-17), solved by branch-and-bound *)
  match T.Optimize.run ~solver:T.Optimize.Ilp spec with
  | Ok { design; seconds; _ } ->
      Format.printf "Literal ILP agrees: $%d (%.1fs, %d binary variables)@."
        (T.Design.cost design) seconds
        (T.Ilp_model.n_vars (T.Ilp_formulation.build spec).T.Ilp_formulation.model)
  | Error _ -> print_endline "ILP: no design within budget (try fewer instances)"
