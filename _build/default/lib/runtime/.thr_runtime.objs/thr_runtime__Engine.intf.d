lib/runtime/engine.mli: Thr_dfg Thr_hls Thr_iplib Thr_trojan
