module Netlist = Thr_gates.Netlist
module Json = Thr_util.Json
module Tablefmt = Thr_util.Tablefmt
module Trace = Thr_obs.Trace
module Metrics = Thr_obs.Metrics
module Log = Thr_obs.Log
module Bmc = Thr_sat.Bmc

type taint_spec = {
  vendor_of : Netlist.net -> int option;
  mismatch : Netlist.net;
  min_vendors : int;
}

type prover = net:Netlist.net -> value:bool -> Bmc.outcome

type prove_stats = {
  prove_bound : int;
  prove_candidates : int;
  prove_reachable : int;
  prove_certified : int;
  prove_unreachable : int;
  prove_inconclusive : int;
  prove_replay_failed : int;
}

type report = {
  netlist_name : string;
  n_nets : int;
  n_gates : int;
  n_dffs : int;
  findings : Finding.t list;
  probs : float array;
  prove : prove_stats option;
}

let default_prove_budget = 400_000

let runs = Metrics.counter "thr_check_runs"

let c_error = Metrics.counter "thr_check_findings_error"

let c_warning = Metrics.counter "thr_check_findings_warning"

let c_info = Metrics.counter "thr_check_findings_info"

let count_severity fs sev =
  List.length (List.filter (fun f -> f.Finding.severity = sev) fs)

(* Cross-check the analytic rare-net candidates against a packed-engine
   Monte-Carlo estimate.  Everything reported here is Info: the
   empirical pass corroborates or questions the model, it never changes
   the exit code (sampling noise must not flake a CI lint). *)
let empirical_findings ~jobs ~vectors nl rare_findings =
  let q = Prob.empirical ~jobs ~seed:0x7105 ~vectors nl in
  let activation i = Float.min q.(i) (1.0 -. q.(i)) in
  let candidate_idx =
    List.filter_map
      (fun f ->
        if f.Finding.rule = "rare-net" then f.Finding.net else None)
      rare_findings
    |> List.sort_uniq Stdlib.compare
  in
  let corroborated = ref 0 and contradicted = ref 0 in
  let per_net =
    Netlist.nets_in_order nl
    |> Array.to_list
    |> List.filter_map (fun net ->
           let i = Netlist.net_index net in
           if not (List.mem i candidate_idx) then None
           else begin
             let a = activation i in
             (* a true trigger candidate should essentially never toggle
                in a few thousand vectors; anything past 1% is the model
                and the simulation disagreeing *)
             let agrees = a < 0.01 in
             if agrees then incr corroborated else incr contradicted;
             Some
               (Finding.make ~pass:Finding.Rare ~severity:Finding.Info
                  ~rule:"rare-empirical" ~net
                  (Printf.sprintf
                     "%s: empirical activation %.3g over %d packed vectors \
                      %s the analytic rare-net score"
                     (Finding.net_label nl net) a vectors
                     (if agrees then "corroborates" else "contradicts")))
           end)
  in
  let summary =
    Finding.make ~pass:Finding.Rare ~severity:Finding.Info ~rule:"empirical"
      (Printf.sprintf
         "empirical cross-check: %d vectors on the packed engine; %d/%d \
          rare-net candidate(s) corroborated"
         vectors !corroborated
         (!corroborated + !contradicted))
  in
  summary :: per_net

(* Escalate every rare-net Warning to an exact verdict, in one batch
   handed to the prover portfolio ({!Thr_sat.Induction} unless a custom
   [prover] was injected).  Reachable with a witness that replays on the
   packed simulator becomes a blocking Error carrying the concrete
   activating input sequence; an unbounded certificate (k-induction or a
   combinational cone) is downgraded to Info under its own rule carrying
   the certificate depth and method; proven unreachable merely within
   the bound is the weaker Info; a budget-exhausted check stays a
   Warning under its own rule so the exit code can say "inconclusive"
   rather than "infected".

   A Reachable witness that does {e not} replay is a prover bug — the
   original Warning is kept (never silently upgraded or dropped), an
   Info records the mismatch, and a [witness_replay_mismatch] log event
   fires for the operator. *)
let prove_findings ~bound ~batch nl probs rare_findings =
  Trace.with_span "check.prove"
    ~args:
      [ ("netlist", Netlist.name nl); ("bound", string_of_int bound) ]
    (fun () ->
      let net_by_idx = Array.make (Netlist.n_nets nl) None in
      Array.iter
        (fun net -> net_by_idx.(Netlist.net_index net) <- Some net)
        (Netlist.nets_in_order nl);
      let candidate_of f =
        if f.Finding.rule = "rare-net" then
          Option.bind f.Finding.net (fun i -> net_by_idx.(i))
        else None
      in
      let cands =
        Array.of_list
          (List.filter_map
             (fun f ->
               Option.map
                 (fun net ->
                   (net, probs.(Netlist.net_index net) < 0.5))
                 (candidate_of f))
             rare_findings)
      in
      let outcomes = batch cands in
      if Array.length outcomes <> Array.length cands then
        invalid_arg "Check.run: prover returned a short outcome array";
      let stats =
        ref
          {
            prove_bound = bound;
            prove_candidates = Array.length cands;
            prove_reachable = 0;
            prove_certified = 0;
            prove_unreachable = 0;
            prove_inconclusive = 0;
            prove_replay_failed = 0;
          }
      in
      (* walk the findings again in the same order, consuming outcomes *)
      let next = ref 0 in
      let escalate f =
        match candidate_of f with
        | None -> [ f ]
        | Some net ->
            let label = Finding.net_label nl net in
            let outcome = outcomes.(!next) in
            incr next;
            (match outcome with
            | Bmc.Reachable w when Bmc.replay nl w ->
                stats :=
                  { !stats with prove_reachable = !stats.prove_reachable + 1 };
                [
                  Finding.make ~pass:Finding.Rare ~severity:Finding.Error
                    ~rule:"proved-reachable" ~net
                    (Printf.sprintf
                       "%s: rare value proven reachable; activating sequence %s"
                       label (Bmc.describe w));
                ]
            | Bmc.Reachable w ->
                stats :=
                  {
                    !stats with
                    prove_replay_failed = !stats.prove_replay_failed + 1;
                  };
                Log.warn "witness_replay_mismatch"
                  [
                    ("netlist", Netlist.name nl);
                    ("net", label);
                    ("cycle", string_of_int w.Bmc.w_cycle);
                  ];
                [
                  f;
                  Finding.make ~pass:Finding.Rare ~severity:Finding.Info
                    ~rule:"witness-replay-mismatch" ~net
                    (Printf.sprintf
                       "%s: prover returned a %d-cycle witness that does not \
                        replay on the packed simulator; keeping the \
                        probabilistic finding"
                       label w.Bmc.w_cycle);
                ]
            | Bmc.Unreachable_unbounded c ->
                stats :=
                  { !stats with prove_certified = !stats.prove_certified + 1 };
                [
                  Finding.make ~pass:Finding.Rare ~severity:Finding.Info
                    ~rule:"unreachable-unbounded" ~net
                    (Printf.sprintf
                       "%s: rare value proven unreachable at any depth \
                        (%s, depth %d)"
                       label c.Bmc.c_method c.Bmc.c_depth);
                ]
            | Bmc.Unreachable k ->
                stats :=
                  {
                    !stats with
                    prove_unreachable = !stats.prove_unreachable + 1;
                  };
                [
                  Finding.make ~pass:Finding.Rare ~severity:Finding.Info
                    ~rule:"rare-unreachable" ~net
                    (Printf.sprintf
                       "%s: rare value proven unreachable within %d cycle(s)"
                       label k);
                ]
            | Bmc.Inconclusive frame ->
                stats :=
                  {
                    !stats with
                    prove_inconclusive = !stats.prove_inconclusive + 1;
                  };
                [
                  Finding.make ~pass:Finding.Rare ~severity:Finding.Warning
                    ~rule:"rare-inconclusive" ~net
                    (Printf.sprintf
                       "%s: prove budget exhausted at frame %d; reachability \
                        undecided"
                       label frame);
                ])
      in
      let escalated = List.concat_map escalate rare_findings in
      let s = !stats in
      let summary =
        Finding.make ~pass:Finding.Rare ~severity:Finding.Info ~rule:"prove"
          (Printf.sprintf
             "prover portfolio (bound %d): %d candidate(s): %d proved \
              reachable, %d certified unreachable-unbounded, %d unreachable \
              within bound, %d inconclusive%s"
             s.prove_bound s.prove_candidates s.prove_reachable
             s.prove_certified s.prove_unreachable s.prove_inconclusive
             (if s.prove_replay_failed > 0 then
                Printf.sprintf ", %d witness replay failure(s)"
                  s.prove_replay_failed
              else ""))
      in
      (summary :: escalated, s))

let run ?taint ?rare_threshold ?prob_iters ?empirical ?prove ?prove_budget
    ?prover ?(jobs = 1) nl =
  Metrics.incr runs;
  let name = Netlist.name nl in
  let lint_findings =
    Trace.with_span "check.lint" ~args:[ ("netlist", name) ] (fun () ->
        Lint.analyse nl)
  in
  let taint_findings =
    match taint with
    | None -> []
    | Some { vendor_of; mismatch; min_vendors } ->
        Trace.with_span "check.taint" ~args:[ ("netlist", name) ] (fun () ->
            fst (Taint.analyse ~vendor_of ~mismatch ~min_vendors nl))
  in
  let rare_findings, probs =
    (* The mismatch comparator's reduction cone (up to the register
       boundary) is scored as near-constant because the NC/RC replicas
       it compares always agree — integrator-inserted checker logic the
       taint pass verifies structurally, so keep it out of the
       trigger-candidate scoring. *)
    let exclude =
      Option.map
        (fun { mismatch; _ } ->
          Netlist.in_cone nl ~through_dffs:false ~roots:[ mismatch ] ())
        taint
    in
    Trace.with_span "check.rare" ~args:[ ("netlist", name) ] (fun () ->
        Prob.analyse ?iters:prob_iters ?threshold:rare_threshold ?exclude nl)
  in
  let empirical_fs =
    match empirical with
    | None -> []
    | Some vectors ->
        Trace.with_span "check.empirical"
          ~args:[ ("netlist", name); ("vectors", string_of_int vectors) ]
          (fun () -> empirical_findings ~jobs ~vectors nl rare_findings)
  in
  let rare_findings, prove_stats =
    match prove with
    | None -> (rare_findings, None)
    | Some bound ->
        let budget =
          Option.value ~default:default_prove_budget prove_budget
        in
        let batch =
          match prover with
          | Some p ->
              fun cands -> Array.map (fun (net, value) -> p ~net ~value) cands
          | None -> Thr_sat.Induction.prove ~bound ~budget ~jobs nl
        in
        let fs, stats = prove_findings ~bound ~batch nl probs rare_findings in
        (fs, Some stats)
  in
  let findings =
    List.sort Finding.compare
      (lint_findings @ taint_findings @ rare_findings @ empirical_fs)
  in
  Metrics.add c_error (count_severity findings Finding.Error);
  Metrics.add c_warning (count_severity findings Finding.Warning);
  Metrics.add c_info (count_severity findings Finding.Info);
  {
    netlist_name = name;
    n_nets = Netlist.n_nets nl;
    n_gates = Netlist.n_gates nl;
    n_dffs = Netlist.n_dffs nl;
    findings;
    probs;
    prove = prove_stats;
  }

type watch_point = { wp_net : int; wp_rare_value : bool; wp_prob : float }

(* Hand the rare-net candidates to the runtime flight recorder: for each
   flagged net, which logic value is the rare one (the level a trigger
   would wait for) and how rare the analytic pass thinks it is. *)
let rare_watchlist r =
  List.filter_map
    (fun f ->
      match f.Finding.net with
      | Some i
        when f.Finding.rule = "rare-net" || f.Finding.rule = "proved-reachable"
        ->
          let p = if i < Array.length r.probs then r.probs.(i) else 0.5 in
          Some { wp_net = i; wp_rare_value = p < 0.5; wp_prob = p }
      | _ -> None)
    r.findings
  |> List.sort_uniq (fun a b -> compare a.wp_net b.wp_net)

let errors r =
  List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings

let warnings r =
  List.filter (fun f -> f.Finding.severity = Finding.Warning) r.findings

let clean r = not (List.exists Finding.is_blocking r.findings)

(* A blocking finding means Lint — except when under [--prove] the only
   blocking findings left are budget-starved [rare-inconclusive]
   warnings, which deserve their own exit code: the design was not shown
   infected, the prover just ran out of budget. *)
let exit_code r =
  let blocking = List.filter Finding.is_blocking r.findings in
  if List.exists (fun f -> f.Finding.rule <> "rare-inconclusive") blocking
  then Thr_util.Exit_code.Lint
  else if blocking <> [] then Thr_util.Exit_code.Inconclusive
  else Thr_util.Exit_code.Ok

let to_json r =
  Json.Obj
    ([
       ("netlist", Json.String r.netlist_name);
       ("nets", Json.Int r.n_nets);
       ("gates", Json.Int r.n_gates);
       ("dffs", Json.Int r.n_dffs);
       ("clean", Json.Bool (clean r));
       ("exit_code", Json.Int (Thr_util.Exit_code.code (exit_code r)));
       ("errors", Json.Int (List.length (errors r)));
       ("warnings", Json.Int (List.length (warnings r)));
       ("findings", Json.List (List.map Finding.to_json r.findings));
     ]
    @
    match r.prove with
    | None -> []
    | Some s ->
        [
          ( "prove",
            Json.Obj
              [
                ("bound", Json.Int s.prove_bound);
                ("candidates", Json.Int s.prove_candidates);
                ("reachable", Json.Int s.prove_reachable);
                ("certified", Json.Int s.prove_certified);
                ("unreachable", Json.Int s.prove_unreachable);
                ("inconclusive", Json.Int s.prove_inconclusive);
                ("replay_failed", Json.Int s.prove_replay_failed);
              ] );
        ])

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d nets, %d gates, %d DFFs\n" r.netlist_name r.n_nets
       r.n_gates r.n_dffs);
  (match r.findings with
  | [] -> ()
  | fs ->
      let tbl =
        Tablefmt.create
          ~aligns:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Left; Tablefmt.Left ]
          ~header:[ "severity"; "pass"; "rule"; "detail" ]
          ()
      in
      List.iter
        (fun f ->
          Tablefmt.add_row tbl
            [
              Finding.severity_name f.Finding.severity;
              Finding.pass_name f.Finding.pass;
              f.Finding.rule;
              f.Finding.detail;
            ])
        fs;
      Buffer.add_string buf (Tablefmt.render tbl);
      Buffer.add_char buf '\n');
  (match r.prove with
  | None -> ()
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf
           "prove: bound %d, %d candidate(s): %d reachable, %d certified \
            unbounded, %d unreachable within bound, %d inconclusive\n"
           s.prove_bound s.prove_candidates s.prove_reachable s.prove_certified
           s.prove_unreachable s.prove_inconclusive));
  Buffer.add_string buf
    (if clean r then "clean: no blocking findings\n"
     else
       Printf.sprintf "NOT clean: %d error(s), %d warning(s)\n"
         (List.length (errors r))
         (List.length (warnings r)));
  Buffer.contents buf
