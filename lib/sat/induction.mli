(** A parallel prover portfolio: strengthened k-induction over the
    {!Cnf} unrolling, with {!Preprocess}-simplified frames and one
    shared incremental cone context per batch of candidates.

    Overlapping trigger-chain candidates (the lint pass typically hands
    over a dozen nets from the same counter cone) encode their {e union}
    fan-in cone once per time frame on two incremental solvers — a base
    solver (power-on initial state, plain BMC frames) and a step solver
    (free initial state, simple-path constraints) — and each candidate
    is asked as an assumption, so learnt clauses are shared across the
    whole batch.  Sharing is gated on the cones actually overlapping: a
    batch is first greedily clustered by cone similarity (Jaccard
    against the running cluster union) and each cluster gets its own
    context, so a wide shallow cone is never unrolled to the depth only
    some unrelated narrow candidate needs.

    At depth [k] a candidate [b] is decided by:

    - {b base}: frames [1..k] with assumption [b_k].  [Sat] is a
      concrete witness (extracted with {!Bmc.witness_of} and replayable
      on the packed simulator); [Unsat] means no activation within [k]
      cycles.
    - {b step}: frames [1..k+1] from an {e arbitrary} state, assumptions
      [¬b_1 .. ¬b_k ∧ b_{k+1}], plus pairwise-distinct state (loop-free
      path) constraints over the in-cone DFF variables.  [Unsat] here,
      together with the clean base case, closes the proof: any shortest
      counterexample deeper than [k] would contain exactly such a
      distinct-state window, so none exists at {e any} depth —
      {!Bmc.outcome.Unreachable_unbounded} with [c_method]
      ["k-induction"] and [c_depth = k].

    Candidates whose own cone is purely combinational skip the unrolling
    entirely: one frame decides reachability for all time and an
    [Unsat] is a depth-0 ["combinational"] certificate.

    The base sweep always runs to [bound] before a verdict is merged:
    reachable candidates are decided by the cheap pinned-init solver and
    a step certificate is only trusted together with the clean base case
    through its depth.

    With [jobs > 1] the two solvers race on two domains — wall-clock
    max(base, step) instead of their sum — and the step side retires a
    candidate as soon as the base sweep decides it.  Batches large
    enough to amortise the duplicated cone encode (32 candidates per
    domain) are instead split into contiguous chunks across a
    {!Thr_util.Dpool}.  Either way results are merged back in input
    order and, without a budget, are bit-identical to the [jobs = 1]
    outcomes whatever the domain scheduling.  Runs under
    ["sat.induction"] trace spans and bumps [thr_sat_certificates_total]
    per closed proof. *)

val prove :
  ?bound:int ->
  ?budget:int ->
  ?jobs:int ->
  ?preprocess:bool ->
  Thr_gates.Netlist.t ->
  (Thr_gates.Netlist.net * bool) array ->
  Bmc.outcome array
(** [prove nl cands] decides, for every [(net, value)] candidate,
    whether some input sequence drives [net] to [value] — returning
    outcomes in input order.

    [bound] (default {!Bmc.default_bound}) caps both the BMC depth and
    the induction depth; a candidate neither witnessed nor certified by
    then degrades to the bounded [Unreachable bound] of plain BMC.
    [budget] is a {e per-candidate} solver-step allowance, metered by
    {!Solver.steps} deltas around each assumption solve on the shared
    solvers; a base-case exhaustion yields [Inconclusive] exactly as in
    {!Bmc.check_net}, while a step-case exhaustion merely abandons the
    induction attempt for that candidate and leaves its bounded verdict
    standing.  At [jobs = 1] the base sweep runs to [bound] {e before}
    any step query, and one meter covers both phases; at [jobs > 1] the
    racing phases each meter the full allowance on their own counter, so
    budget-starved verdicts may differ from the sequential ones.
    [preprocess] (default [true]) routes the step solver's first frame —
    the clauses every deep induction query chains through — via
    {!Preprocess.simplify} with the frame boundary (inputs, state,
    next-state and target variables) frozen; the base solver's frames
    always go in raw, keeping shallow witness extraction free of model
    reconstruction.  [jobs] (default 1) sizes the racing pool.

    Finalises the netlist if needed.
    @raise Invalid_argument if [bound < 1]. *)
