module Json = Thr_util.Json

type kind =
  | Trigger_candidate_active
  | Mismatch_detected
  | Recovery_started
  | Recovery_ok
  | Recovery_failed

type event = {
  seq : int;
  ts_us : float;
  cycle : int;
  lane : int;
  kind : kind;
  ctx : (string * string) list;
}

let kind_name = function
  | Trigger_candidate_active -> "Trigger_candidate_active"
  | Mismatch_detected -> "Mismatch_detected"
  | Recovery_started -> "Recovery_started"
  | Recovery_ok -> "Recovery_ok"
  | Recovery_failed -> "Recovery_failed"

let all_kinds =
  [
    Trigger_candidate_active;
    Mismatch_detected;
    Recovery_started;
    Recovery_ok;
    Recovery_failed;
  ]

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds
let kind_index k = match k with
  | Trigger_candidate_active -> 0
  | Mismatch_detected -> 1
  | Recovery_started -> 2
  | Recovery_ok -> 3
  | Recovery_failed -> 4

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* ------------------------------- state ------------------------------ *)

let default_capacity = 65_536
let lock = Mutex.create ()
let capacity = ref default_capacity
let ring : event array ref = ref [||]
let head = ref 0
let count = ref 0
let n_dropped = ref 0
let next_seq = ref 0
let kind_counts = Array.make (List.length all_kinds) 0
let first_detect : int option ref = ref None

let events_total = Metrics.counter "thr_rt_events_total"
let dropped_total = Metrics.counter "thr_obs_journal_dropped_total"
let triggers_total = Metrics.counter "thr_rt_trigger_candidates_total"
let detections_total = Metrics.counter "thr_rt_detections_total"
let recoveries_ok_total = Metrics.counter "thr_rt_recoveries_ok_total"
let recoveries_failed_total = Metrics.counter "thr_rt_recoveries_failed_total"

let bump_kind_counter = function
  | Trigger_candidate_active -> Metrics.incr triggers_total
  | Mismatch_detected -> Metrics.incr detections_total
  | Recovery_started -> ()
  | Recovery_ok -> Metrics.incr recoveries_ok_total
  | Recovery_failed -> Metrics.incr recoveries_failed_total

(* dummy slot for fresh rings; never observable through [events] *)
let null_event =
  { seq = -1; ts_us = 0.0; cycle = 0; lane = 0; kind = Recovery_ok; ctx = [] }

let emit ~cycle ?(lane = 0) ?(ctx = []) kind =
  if Atomic.get enabled_flag then begin
    let ts_us = Trace.now_us () in
    Mutex.protect lock (fun () ->
        let cap = !capacity in
        if Array.length !ring <> cap then begin
          ring := Array.make cap null_event;
          head := 0;
          count := 0
        end;
        let ev = { seq = !next_seq; ts_us; cycle; lane; kind; ctx } in
        incr next_seq;
        kind_counts.(kind_index kind) <- kind_counts.(kind_index kind) + 1;
        (match kind with
        | Mismatch_detected ->
            if !first_detect = None then first_detect := Some cycle
        | _ -> ());
        !ring.(!head) <- ev;
        head := (!head + 1) mod cap;
        if !count < cap then incr count
        else begin
          incr n_dropped;
          Metrics.incr dropped_total
        end);
    Metrics.incr events_total;
    bump_kind_counter kind
  end

let set_capacity n =
  if n < 1 then invalid_arg "Journal.set_capacity: capacity must be >= 1";
  Mutex.protect lock (fun () ->
      capacity := n;
      ring := [||];
      head := 0;
      count := 0;
      n_dropped := 0)

let clear () =
  Mutex.protect lock (fun () ->
      ring := [||];
      head := 0;
      count := 0;
      n_dropped := 0;
      next_seq := 0;
      Array.fill kind_counts 0 (Array.length kind_counts) 0;
      first_detect := None)

let events_locked () =
  let cap = Array.length !ring in
  let n = !count in
  if n = 0 then []
  else List.init n (fun i -> !ring.((!head - n + i + (2 * cap)) mod cap))

let events () = Mutex.protect lock events_locked

let tail n =
  let evs = events () in
  let len = List.length evs in
  if n >= len then evs else List.filteri (fun i _ -> i >= len - n) evs

let dropped () = Mutex.protect lock (fun () -> !n_dropped)
let first_detection_cycle () = Mutex.protect lock (fun () -> !first_detect)

(* --------------------------- cycle metrics -------------------------- *)

(* Cycle-scale buckets: schedules in the paper's tables are a handful of
   control steps, campaigns run a few hundred cycles. *)
let cycle_buckets =
  [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32.; 48.; 64.; 128.; 256.; 512. |]

let latency_hist base cls =
  let h = Metrics.histogram ~buckets:cycle_buckets base in
  if cls = "" then [ h ]
  else [ h; Metrics.histogram ~buckets:cycle_buckets (base ^ "_" ^ cls) ]

(* register the base histograms up front so a metrics scrape shows them
   (at zero) before any detection has been observed *)
let () =
  ignore (latency_hist "thr_rt_detection_latency_cycles" "");
  ignore (latency_hist "thr_rt_recovery_latency_cycles" "")

let observe_detection_latency ~cls cycles =
  List.iter
    (fun h -> Metrics.observe h (float_of_int cycles))
    (latency_hist "thr_rt_detection_latency_cycles" cls)

let observe_recovery_latency ~cls cycles =
  List.iter
    (fun h -> Metrics.observe h (float_of_int cycles))
    (latency_hist "thr_rt_recovery_latency_cycles" cls)

(* -------------------------------- JSON ------------------------------- *)

let event_to_json ev =
  Json.Obj
    [
      ("seq", Json.Int ev.seq);
      ("ts_us", Json.Float ev.ts_us);
      ("cycle", Json.Int ev.cycle);
      ("lane", Json.Int ev.lane);
      ("kind", Json.String (kind_name ev.kind));
      ("ctx", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.ctx));
    ]

let event_of_json j =
  match (Json.mem_int "seq" j, Json.mem_int "cycle" j, Json.member "kind" j) with
  | Some seq, Some cycle, Some (Json.String ks) -> (
      match kind_of_name ks with
      | None -> Error (Printf.sprintf "unknown journal event kind %S" ks)
      | Some kind ->
          let ts_us =
            match Json.member "ts_us" j with
            | Some v -> ( match Json.to_float v with Some f -> f | None -> 0.0)
            | None -> 0.0
          in
          let lane = Option.value (Json.mem_int "lane" j) ~default:0 in
          let ctx =
            match Json.member "ctx" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) ->
                    match v with Json.String s -> Some (k, s) | _ -> None)
                  kvs
            | _ -> []
          in
          Ok { seq; ts_us; cycle; lane; kind; ctx })
  | _ -> Error "journal event: missing seq/cycle/kind"

let summary_json () =
  Mutex.protect lock (fun () ->
      Json.Obj
        ([
           ("events", Json.Int !next_seq);
           ("buffered", Json.Int !count);
           ("dropped", Json.Int !n_dropped);
           ( "first_detection_cycle",
             match !first_detect with Some c -> Json.Int c | None -> Json.Null
           );
         ]
        @ List.map
            (fun k ->
              (String.lowercase_ascii (kind_name k),
               Json.Int kind_counts.(kind_index k)))
            all_kinds))

let to_json () =
  let evs = events () in
  Json.Obj
    [
      ("events", Json.List (List.map event_to_json evs));
      ("dropped", Json.Int (dropped ()));
      ("summary", summary_json ());
    ]

let events_of_json j =
  match Json.member "events" j with
  | Some (Json.List evs) ->
      List.fold_left
        (fun acc ej ->
          match (acc, event_of_json ej) with
          | Error _, _ -> acc
          | Ok l, Ok ev -> Ok (ev :: l)
          | Ok _, Error e -> Error e)
        (Ok []) evs
      |> Result.map List.rev
  | _ -> Error "journal: missing \"events\" list"

let write_file path =
  let j = to_json () in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "thls-journal" ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (Json.to_string ~pretty:true j);
         output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* --------------------------- trace provider -------------------------- *)

(* Mirror journal events into Chrome trace exports as instants on a
   synthetic tid lane (1000 + packed lane), far above real domain ids, so
   the cycle timeline reads as its own track next to CPU spans. *)
let trace_tid_base = 1000

let trace_events () =
  List.map
    (fun ev ->
      Json.Obj
        [
          ("name", Json.String (kind_name ev.kind));
          ("cat", Json.String "cycle");
          ("ph", Json.String "i");
          ("ts", Json.Float ev.ts_us);
          ("pid", Json.Int 1);
          ("tid", Json.Int (trace_tid_base + ev.lane));
          ("s", Json.String "t");
          ( "args",
            Json.Obj
              (("cycle", Json.String (string_of_int ev.cycle))
              :: List.map (fun (k, v) -> (k, Json.String v)) ev.ctx) );
        ])
    (events ())

let () = Trace.register_provider trace_events
