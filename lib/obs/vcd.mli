(** Minimal VCD (IEEE 1364 value-change-dump) emitter and parser.

    The emitted subset is deliberately small — single-bit wires in one
    [$scope], [$timescale 1ns], a [$dumpvars] block with the initial
    values, then [#cycle] sections listing only the signals that changed
    — and is accepted by GTKWave.  Output is deterministic: no dates, no
    tool banners, identifiers assigned in signal order.

    The parser reads exactly this subset back (it carries values forward
    across cycles), which gives the round-trip property tested against
    the packed simulator: [parse (to_string w) = Ok w']. *)

type wave = {
  v_names : string array;  (** declaration order *)
  v_cycles : int array;  (** sampled times, strictly increasing *)
  v_bits : bool array array;  (** [v_bits.(t).(s)]: time [t], signal [s] *)
}

val to_string : wave -> string
(** @raise Invalid_argument on empty signals/cycles or ragged rows. *)

val parse : string -> (wave, string) result
(** Parse our own subset back: per-cycle values with carry-forward, so
    [parse (to_string w)] recovers every sampled value exactly. *)

val write_file : string -> wave -> unit
(** Crash-safe write (temp file + rename). *)
