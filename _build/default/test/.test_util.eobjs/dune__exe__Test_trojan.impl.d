test/test_trojan.ml: Alcotest List QCheck QCheck_alcotest String Thr_gates Thr_trojan Thr_util
