(** Bounded flight recorder for lane-packed signal words.

    A recorder snapshots a fixed watch-list of signals once per clock
    cycle into a ring holding the last [depth] cycles.  Samples are plain
    native-int words — one bit per packed-simulator lane — so this module
    stays representation-agnostic and below [Thr_gates] in the dependency
    order; the glue that reads a [Packed] simulator lives in
    [Thr_runtime.Rtl].

    On detection the ring is frozen into a {!window} (oldest cycle
    first), which [bin/thls] renders to a VCD waveform via {!Vcd}. *)

type t

val create : names:string array -> ?depth:int -> unit -> t
(** [create ~names ()] makes a recorder for [Array.length names] signals
    remembering the last [depth] cycles (default 256).
    @raise Invalid_argument if [depth < 1] or [names] is empty. *)

val names : t -> string array
val depth : t -> int

val push : t -> cycle:int -> int array -> unit
(** [push t ~cycle words] snapshots one cycle; [words.(i)] is the packed
    word of signal [names.(i)].  The words are copied.  Once [depth]
    cycles are buffered the oldest is overwritten.
    @raise Invalid_argument if [Array.length words] mismatches [names]. *)

val cycles_seen : t -> int
(** Total [push] calls since [create]/[clear]. *)

type window = {
  w_names : string array;
  w_cycles : int array;  (** recorded cycle stamps, oldest first *)
  w_words : int array array;  (** [w_words.(t).(s)]: cycle [t], signal [s] *)
}

val window : t -> window
(** Freeze the buffered cycles (oldest first) into an immutable window. *)

val lane_bits : window -> lane:int -> bool array array
(** [lane_bits w ~lane] extracts one lane: [(.(t).(s))] is signal [s]'s
    bit at recorded cycle [t].
    @raise Invalid_argument unless [0 <= lane < 63]. *)

val clear : t -> unit
