test/test_opt.ml: Alcotest Array Format List Option QCheck QCheck_alcotest Thr_benchmarks Thr_dfg Thr_hls Thr_iplib Thr_opt Thr_util
