lib/hls/schedule.ml: Array Copy Format List Spec Thr_dfg
