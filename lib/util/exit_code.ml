type t = Ok | Usage | Infeasible | Budget | Lint

let code = function
  | Ok -> 0
  | Usage -> 1
  | Infeasible -> 2
  | Budget -> 3
  | Lint -> 4

let describe = function
  | Ok -> "success"
  | Usage -> "usage or I/O error"
  | Infeasible -> "proven infeasible: no design satisfies the constraints"
  | Budget -> "search budget exhausted with no incumbent design"
  | Lint -> "static analysis reported findings"

let all = [ Ok; Usage; Infeasible; Budget; Lint ]

let exit t = Stdlib.exit (code t)
