module Netlist = Thr_gates.Netlist
module Bus = Thr_gates.Bus
module Sim = Thr_gates.Sim

type harness = {
  netlist : Netlist.t;
  width : int;
  out : Bus.t;
  trigger_net : Netlist.net;
}

(* Trigger condition net: selected bits of a and b match their patterns. *)
let condition nl a_bus b_bus ~a_pattern ~b_pattern ~mask =
  let masked_eq bus pattern =
    let bits = ref [] in
    Array.iteri
      (fun i n ->
        if (mask lsr i) land 1 = 1 then
          let want = (pattern lsr i) land 1 = 1 in
          bits := (if want then n else Netlist.not_ nl n) :: !bits)
      bus;
    match !bits with [] -> Netlist.const nl true | l -> Netlist.and_list nl l
  in
  Netlist.and_ nl (masked_eq a_bus a_pattern) (masked_eq b_bus b_pattern)

let base nl ~width =
  let a = Bus.inputs nl "a" width in
  let b = Bus.inputs nl "b" width in
  let d = Bus.inputs nl "d" width in
  (a, b, d)

let finish nl ~width ~trigger ~payload_mask d =
  let out = Bus.xor_enable nl d ~enable:trigger ~mask:payload_mask in
  Bus.outputs nl "out" out;
  Netlist.output nl "T" trigger;
  Netlist.finalise nl;
  { netlist = nl; width; out; trigger_net = trigger }

let fig2a ~width ~a_pattern ~b_pattern ~mask ~payload_mask =
  let nl = Netlist.create ~name:"fig2a" in
  let a, b, d = base nl ~width in
  let trigger = condition nl a b ~a_pattern ~b_pattern ~mask in
  finish nl ~width ~trigger ~payload_mask d

let bits_needed threshold =
  let rec go b = if 1 lsl b > threshold then b else go (b + 1) in
  go 1

let fig2b ~width ~a_pattern ~b_pattern ~mask ~threshold ~payload_mask =
  if threshold < 1 then invalid_arg "Circuits.fig2b: threshold < 1";
  let nl = Netlist.create ~name:"fig2b" in
  let a, b, d = base nl ~width in
  let cond = condition nl a b ~a_pattern ~b_pattern ~mask in
  let k = bits_needed threshold in
  (* count' = cond ? (count = threshold ? count : count + 1) : 0 *)
  let count =
    Netlist.dff_loop_many nl ~inits:(Array.make k false) (fun qs ->
        let at_thr = Bus.eq_const nl qs threshold in
        let carry = ref (Netlist.const nl true) in
        Array.map
          (fun q ->
            let sum = Netlist.xor_ nl q !carry in
            carry := Netlist.and_ nl !carry q;
            let held = Netlist.mux nl ~sel:at_thr ~t0:sum ~t1:q in
            Netlist.and_ nl cond held)
          qs)
  in
  let trigger = Bus.eq_const nl count threshold in
  finish nl ~width ~trigger ~payload_mask d

let fig3 ~width ~a_pattern ~b_pattern ~mask ~payload_mask =
  let nl = Netlist.create ~name:"fig3" in
  let a, b, d = base nl ~width in
  let cond = condition nl a b ~a_pattern ~b_pattern ~mask in
  (* set-only latch: once the trigger fires the corruption persists *)
  let latch = Netlist.dff_loop nl (fun q -> Netlist.or_ nl q cond) in
  let trigger = Netlist.or_ nl latch cond in
  finish nl ~width ~trigger ~payload_mask d

let drive sim h ~a ~b ~d =
  Bus.drive_int (Sim.set_input sim) "a" h.width a;
  Bus.drive_int (Sim.set_input sim) "b" h.width b;
  Bus.drive_int (Sim.set_input sim) "d" h.width d;
  Sim.clock sim

let read_out sim h = Bus.to_int (Sim.peek sim) h.out

let read_trigger sim h = Sim.peek sim h.trigger_net
