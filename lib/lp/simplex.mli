(** Sparse revised simplex with an LU-factorised basis.

    A two-phase primal simplex over variables with explicit bounds
    [l_j <= x_j <= u_j] (finite lower bound required, upper bound may be
    infinite).  This is the LP relaxation engine under the 0–1 ILP
    branch-and-bound in {!Thr_ilp}.

    The basis is held as a sparse LU factorisation ({!Lu}:
    Gilbert–Peierls elimination with Markowitz-style pivoting for
    sparsity).  Tableau columns and rows are materialised on demand with
    FTRAN/BTRAN; each basis change appends a product-form eta, and the
    factors are rebuilt when the eta file reaches its budget or a
    row/column pivot-agreement check trips — so per-pivot cost scales
    with the nonzeros actually touched instead of m·ncols as in the
    former dense tableau (retained as {!Dense} for cross-checking).

    Minimisation only; negate the objective for maximisation.
    Anti-cycling: Dantzig pricing with a fallback to Bland's rule after a
    run of degenerate pivots.

    {b Warm starts.}  A successful [solve] caches its final basis (LU
    factors and eta file included) inside the problem.  A later [solve]
    after [set_bounds] changes revives that basis with the
    bounded-variable dual simplex — the basis is still dual feasible for
    the unchanged objective, so only primal feasibility needs restoring —
    instead of re-running both cold phases.  Leaving rows are priced by
    dual steepest edge (Forrest–Goldfarb weights from a unit reference
    frame).  [set_objective] and [add_constraint] invalidate the cache.

    {b Observability.}  Emits [lp.factorize]/[lp.ftran]/[lp.btran] spans
    via {!Thr_obs.Trace} and bumps the process-wide
    [thr_lp_refactorizations_total] / [thr_lp_eta_updates_total]
    counters. *)

type relation = Le | Ge | Eq

type problem
(** Mutable problem under construction. *)

val create : n_vars:int -> problem
(** Variables [x_0 .. x_(n_vars-1)], each defaulting to bounds [\[0, ∞)] and
    objective coefficient [0]. *)

val n_vars : problem -> int

val n_constraints : problem -> int

val set_bounds : problem -> int -> lo:float -> up:float -> unit
(** Keeps any cached basis (re-solves warm start).
    @raise Invalid_argument if [lo] is infinite or NaN, [up < lo], or the
    variable index is out of range. *)

val set_objective : problem -> (int * float) list -> unit
(** Sparse minimisation objective; unmentioned variables keep coefficient
    [0].  Replaces any previous objective.  Invalidates the warm-start
    cache. *)

val add_constraint : problem -> (int * float) list -> relation -> float -> unit
(** [add_constraint p terms rel rhs] adds [Σ c_i·x_i rel rhs].  Repeated
    variable indices within [terms] are summed.  Invalidates the
    warm-start cache. *)

type solution = {
  objective : float;
  values : float array;  (** one value per variable, within bounds *)
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit  (** iteration cap hit before convergence *)
  | Cutoff
      (** warm re-solve proved the optimum exceeds the given [?cutoff]
          before reaching it (only produced by warm starts) *)

val solve :
  ?eps:float -> ?max_iters:int -> ?cutoff:float -> ?warm:bool -> problem ->
  result
(** Solve the current problem.  [eps] (default [1e-7]) is the feasibility
    and pricing tolerance; [max_iters] (default [200_000]) bounds total
    pivots across both phases.  The problem may be solved again after
    further [add_constraint]/[set_bounds] calls.

    When [warm] (default [true]) and a cached basis from a previous
    optimal solve is still valid, the re-solve runs the dual simplex from
    that basis.  During such a warm re-solve the objective value rises
    monotonically from below, so if [cutoff] is given and the running
    objective exceeds it, the solve aborts with {!Cutoff} — the true
    optimum is provably above the cutoff.  Cold solves ignore [cutoff]. *)

val forget : problem -> unit
(** Drop the cached basis; the next [solve] runs cold. *)

type stats = {
  phase1_pivots : int;
  phase2_pivots : int;
  dual_pivots : int;  (** pivots spent in warm-start dual re-solves *)
  degenerate_pivots : int;
  bland_fallbacks : int;  (** times anti-cycling switched to Bland's rule *)
  warm_solves : int;
  cold_solves : int;
  refactorizations : int;  (** basis LU rebuilds (scheduled or stability) *)
  eta_updates : int;  (** product-form eta columns appended to the factors *)
}
(** Cumulative effort counters since [create]. *)

val zero_stats : stats

val stats : problem -> stats

val total_pivots : stats -> int

val pp_stats : Format.formatter -> stats -> unit

val pp_result : Format.formatter -> result -> unit
