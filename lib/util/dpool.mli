(** A small fixed-size domain pool (OCaml 5 [Domain] + [Mutex]/[Condition],
    no external dependencies) for fanning out independent work: Monte-Carlo
    campaign trials, benchmark table rows, racing solvers.

    A pool with [jobs = n] uses the caller plus [n - 1] worker domains.
    With [jobs = 1] no domains are spawned at all and every operation runs
    inline on the caller in submission order — exactly the sequential
    code path, which keeps [--jobs 1] runs bit-for-bit deterministic. *)

type t

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core for
    the caller's own work. *)

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains.  Call {!shutdown} when done.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue a task for the worker domains.  There is no
    completion handle — build one (or use {!map}/{!both}) if the result
    matters.  With [jobs = 1] there are no workers, so nothing ever runs
    a submitted task: callers must dispatch inline instead for
    sequential pools. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element, results in input order.
    With [jobs = 1] this is [List.map f xs].  Otherwise elements run on
    the worker domains; if any call raises, the first exception is
    re-raised on the caller after all tasks settle.  [f] must be safe to
    run concurrently with itself when [jobs > 1]. *)

val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both pool fa fb] runs the two thunks — [fb] on a worker, [fa] on the
    caller (sequentially, [fa] first, when [jobs = 1]) — and returns both
    results.  Raises the first exception observed once both settle. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent for [jobs = 1] pools. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] = create, apply [f], always shutdown.  Raises
    [Invalid_argument] when [jobs < 1]. *)
