test/test_hls.ml: Alcotest Array Format Hashtbl List String Thr_benchmarks Thr_dfg Thr_hls Thr_iplib Thr_opt
