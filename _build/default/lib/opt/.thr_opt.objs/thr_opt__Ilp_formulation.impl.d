lib/opt/ilp_formulation.ml: Array Instance List Printf Thr_dfg Thr_hls Thr_ilp Thr_iplib
