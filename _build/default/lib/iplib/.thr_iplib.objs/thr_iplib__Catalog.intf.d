lib/iplib/catalog.mli: Format Iptype Thr_util Vendor
