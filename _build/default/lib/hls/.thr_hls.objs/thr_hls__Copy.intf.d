lib/hls/copy.mli: Format Spec
