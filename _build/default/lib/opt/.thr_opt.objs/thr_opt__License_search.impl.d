lib/opt/license_search.ml: Array Csp Format Hashtbl Instance List Stdlib Sys Thr_hls Thr_iplib Thr_util
