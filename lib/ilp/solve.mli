(** Branch-and-bound ILP solver.

    Depth-first branch-and-bound over the LP relaxation solved by
    {!Thr_lp.Simplex}.  Branching picks the most fractional integer
    variable; the child closer to the fractional value is explored first.
    Nodes are pruned against the incumbent with a small tolerance, so with
    an exhausted search the returned solution is optimal.

    Designed for the literal paper ILP (eqs. 3–17) on small instances — a
    few hundred binary variables — used to cross-validate the production
    licence-set search in {!Thr_opt}. *)

type solution = {
  objective : float;
  values : int array; (** indexed by {!Model.var_index} *)
}

val value : solution -> Model.var -> int

type outcome =
  | Optimal of solution    (** proven optimal *)
  | Infeasible             (** no integer point satisfies the constraints *)
  | Unbounded
  | Budget of solution option
      (** node budget exhausted; carries the best incumbent found *)

type stats = {
  nodes : int;
  lp_solves : int;
  cover_cuts : int;  (** cover cuts added during the root tightening loop *)
  clique_cuts : int;  (** clique cuts added during the root tightening loop *)
  cut_rounds : int;  (** separation/re-solve rounds actually run *)
  simplex : Thr_lp.Simplex.stats;
      (** cumulative simplex effort (pivots, warm/cold solve counts) over
          the node LPs of this solve *)
}

val total_pivots : stats -> int
(** Total simplex pivots (phase 1 + phase 2 + dual) across all node LPs. *)

val solve :
  ?max_nodes:int ->
  ?eps:float ->
  ?priority:Model.var list ->
  ?warm:bool ->
  ?cuts:bool ->
  ?cut_rounds:int ->
  ?dive:bool ->
  ?should_stop:(unit -> bool) ->
  Model.t ->
  outcome * stats
(** [solve m] minimises [m]'s objective.  [max_nodes] (default [100_000])
    bounds branch-and-bound nodes; [eps] (default [1e-6]) is the
    integrality tolerance.  When [priority] is given, branching always
    picks a fractional variable from that list first (most fractional
    within the list) — useful when a few variables drive the objective.

    [warm] (default [true]) re-solves node LPs warm from the basis of the
    previously explored node and prunes with an objective cutoff against
    the incumbent; [~warm:false] restores the cold-start baseline.

    [cuts] (default [true]) runs a root cutting-plane loop before
    branching: {!Cuts} clique and cover cuts violated by the fractional
    root optimum are appended to the relaxation and it is re-solved, up
    to [cut_rounds] (default [8]) separation rounds.  Cuts never exclude
    an integer-feasible point, so the optimum is unchanged.

    [dive] (default [true]) runs a rounding dive from the root optimum —
    repeatedly fixing the most fractional integer variable to its
    nearest feasible integer and re-solving — to plant an incumbent
    before the search starts, which arms the objective cutoff for the
    whole tree.  Dive LPs always solve cold so warm and cold runs dive
    identically; [~dive:false] isolates the pure branch-and-bound for
    benchmarking.

    [should_stop] is polled once per node; when it returns [true] the
    search stops as if the node budget were exhausted (outcome
    [Budget _]). *)

val pp_outcome : Format.formatter -> outcome -> unit
