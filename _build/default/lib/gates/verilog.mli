(** Structural Verilog export.

    Serialises a finalised {!Netlist} as a synthesisable Verilog-2001
    module: one wire per net, primitive gate instances ([and]/[or]/
    [xor]/[nand]/[nor]/[not]), conditional assigns for muxes, and a
    positive-edge DFF process with an asynchronous reset to the declared
    init values.  This is the hand-off point to standard EDA flows for
    the RTL that {!Thr_runtime.Rtl} elaborates.

    Net names: primary inputs and outputs keep their (sanitised) names;
    internal nets are [n<index>].  Dotted bus names like [a.3] become
    [a_3]. *)

val to_string : ?module_name:string -> Netlist.t -> string
(** The complete module source.  Finalises the netlist if needed.
    [module_name] defaults to the netlist's (sanitised) name.  The module
    always has [clk] and [rst] ports; [rst] loads every DFF's init
    value. *)

val write : ?module_name:string -> Netlist.t -> string -> unit
(** Write {!to_string} to a file.  @raise Sys_error on IO failure. *)
