lib/dfg/dfg.ml: Array Buffer Format List Op Printf Set Stdlib
