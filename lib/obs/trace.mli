(** Span-based tracer exporting Chrome [trace_event] JSON.

    Disabled (the default) the tracer costs a single atomic load per
    [with_span]/[instant] call.  Enabled, each domain keeps its own stack
    of open spans (so [Dpool] fan-out nests correctly and an exception
    unwinds only its own domain's spans), timestamps come from a
    software-monotonic clock (wall clock clamped to never run backwards
    across domains), and completed spans accumulate in a process-wide
    buffer until [write_file]/[export].

    The output loads directly in chrome://tracing or Perfetto: complete
    events carry [ph="X"], microsecond [ts]/[dur], [pid=1] and the domain
    id as [tid]. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val now_us : unit -> float
(** The tracer's software-monotonic clock: microseconds since module
    load, never decreasing across domains.  Exposed so throughput
    measurements (e.g. the packed simulator's vectors-per-second
    histogram) share the span timestamps' time base without taking
    their own [unix] dependency. *)

val with_span : string -> ?args:(string * string) list -> (unit -> 'a) -> 'a
(** [with_span name ?args f] runs [f] inside a span.  The span is
    recorded (and the per-domain stack unwound) whether [f] returns or
    raises.  When tracing is disabled this is just [f ()]. *)

val instant : string -> ?args:(string * string) list -> unit -> unit
(** A zero-duration event ([ph="i"]), e.g. an incumbent improvement. *)

val depth : unit -> int
(** Open spans on the calling domain's stack. *)

val completed : unit -> int
(** Complete spans recorded since the last [clear]. *)

val set_capacity : int -> unit
(** Resize the bounded event ring (default 262144 events) and discard
    anything buffered.  Once full, recording overwrites the oldest event
    and bumps [thr_obs_trace_dropped_total].
    @raise Invalid_argument if the capacity is < 1. *)

val dropped : unit -> int
(** Events overwritten by the ring since the last [clear]/[set_capacity]. *)

val register_provider : (unit -> Thr_util.Json.t list) -> unit
(** [register_provider f] adds a source of extra trace events consulted at
    [export] time (after the ring's own events, in registration order).
    Used by {!Journal} to lay the cycle-domain timeline alongside CPU
    spans.  [f] runs outside the tracer's lock and must not raise. *)

val clear : unit -> unit
val export : unit -> Thr_util.Json.t

val write_file : string -> unit
(** Write [export ()] to [path] via a temp file in the same directory
    followed by an atomic rename, so a crash mid-write never leaves a
    truncated trace. *)
