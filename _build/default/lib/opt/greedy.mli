(** Greedy baseline optimiser.

    A fast, incomplete heuristic used as the ablation reference and as an
    upper bound: ASAP scheduling, then first-fit vendor colouring in copy
    order, preferring vendors whose licence is already purchased and whose
    marginal area is smallest, buying the cheapest admissible new licence
    otherwise.  May fail where the CSP succeeds (returns [None]); never
    returns an invalid design. *)

val run : Thr_hls.Spec.t -> Thr_hls.Design.t option
