(* CNF preprocessing with model reconstruction.

   Three root-level simplifications run to a fixpoint over the clause
   list of one frame: unit propagation (also folding in the constants a
   Tseitin frame pins with unit clauses), pure-literal fixing of
   non-frozen variables, failed-literal probing (assume a literal,
   propagate; a conflict learns the negation as a root unit), and
   bounded variable elimination in the NiVER style (eliminate a variable
   when its non-tautological resolvents are no more numerous than the
   clauses they replace).

   Every removal of a non-frozen variable pushes a reconstruction entry.
   The stack is replayed most-recent-first by [extend]: an entry's
   clause snapshot only references variables that were still undecided
   when it was pushed, so those are either surviving (solver model) or
   decided by entries above it — a full model of the original formula
   falls out in one pass. *)

module Trace = Thr_obs.Trace
module Metrics = Thr_obs.Metrics

type entry =
  | Fixed of int * bool  (* var, forced or chosen root value *)
  | Eliminated of int * int list list
      (* var, snapshot of every clause containing it at elimination *)

type t = { mutable stack : entry list }

let create () = { stack = [] }

type stats = {
  pp_clauses_in : int;
  pp_clauses_out : int;
  pp_removed_vars : int;
  pp_probe_units : int;
  pp_eliminated : int;
}

let m_removed = Metrics.counter "thr_sat_preprocess_removed_vars_total"

let m_clauses_in = Metrics.counter "thr_sat_preprocess_clauses_in_total"

let m_clauses_out = Metrics.counter "thr_sat_preprocess_clauses_out_total"

let m_probe_units = Metrics.counter "thr_sat_preprocess_probe_units_total"

(* sort by variable, drop duplicates, detect tautologies *)
let norm lits =
  let l = List.sort_uniq compare lits in
  let l = List.sort (fun a b -> compare (abs a, a) (abs b, b)) l in
  let rec taut = function
    | a :: b :: rest -> a = -b || taut (b :: rest)
    | _ -> false
  in
  if taut l then None else Some l

exception Unsat_found

let simplify ?(probe_limit = 512) ?(elim_occ_limit = 10) t ~frozen ~n_vars
    clauses =
  Trace.with_span "sat.preprocess"
    ~args:[ ("clauses", string_of_int (List.length clauses)) ]
    (fun () ->
      let n_in = List.length clauses in
      (* growable clause store; occurrence lists are append-only and
         filtered on traversal (an entry may be stale after a kill or a
         literal strike) *)
      let cap = ref (max 16 (2 * n_in)) in
      let cls = ref (Array.make !cap []) in
      let alive = ref (Array.make !cap false) in
      let n_cls = ref 0 in
      let occ = Array.make (n_vars + 1) [] in
      let value = Array.make (n_vars + 1) 0 in
      let lit_value l =
        let v = value.(abs l) in
        if v = 0 then 0 else if l > 0 then v else -v
      in
      let probe_units = ref 0 in
      let eliminated = ref 0 in
      let removed = ref 0 in
      let units = Queue.create () in
      let register idx c =
        List.iter (fun l -> occ.(abs l) <- idx :: occ.(abs l)) c
      in
      let push_clause c =
        match norm c with
        | None -> () (* tautology *)
        | Some c ->
        (* simplify against the current root values on the way in *)
        if not (List.exists (fun l -> lit_value l = 1) c) then begin
          let c = List.filter (fun l -> lit_value l <> -1) c in
          match c with
          | [] -> raise Unsat_found
          | [ l ] -> Queue.add l units
          | c ->
              if !n_cls = !cap then begin
                cap := 2 * !cap;
                let d = Array.make !cap [] and a = Array.make !cap false in
                Array.blit !cls 0 d 0 !n_cls;
                Array.blit !alive 0 a 0 !n_cls;
                cls := d;
                alive := a
              end;
              !cls.(!n_cls) <- c;
              !alive.(!n_cls) <- true;
              register !n_cls c;
              n_cls := !n_cls + 1
        end
      in
      (* fix [l] at the root and rewrite every clause containing its
         variable; newly-unit clauses queue up *)
      let assign_root l =
        let v = abs l in
        if value.(v) <> 0 then begin
          if lit_value l = -1 then raise Unsat_found
        end
        else begin
          value.(v) <- (if l > 0 then 1 else -1);
          if not frozen.(v) then begin
            t.stack <- Fixed (v, l > 0) :: t.stack;
            incr removed
          end;
          List.iter
            (fun idx ->
              if !alive.(idx) then begin
                let c = !cls.(idx) in
                if List.exists (fun m -> lit_value m = 1) c then
                  !alive.(idx) <- false
                else begin
                  let c' = List.filter (fun m -> lit_value m <> -1) c in
                  match c' with
                  | [] -> raise Unsat_found
                  | [ m ] ->
                      !alive.(idx) <- false;
                      Queue.add m units
                  | c' -> !cls.(idx) <- c'
                end
              end)
            occ.(v)
        end
      in
      let drain_units () =
        while not (Queue.is_empty units) do
          assign_root (Queue.pop units)
        done
      in
      (* temporary propagation for probing: returns true on conflict.
         [tval]/[touched] implement an undoable trail over the root
         values. *)
      let tval = Array.make (n_vars + 1) 0 in
      let touched = ref [] in
      let t_lit_value l =
        let v = abs l in
        let x = if value.(v) <> 0 then value.(v) else tval.(v) in
        if x = 0 then 0 else if l > 0 then x else -x
      in
      let probe_conflicts l =
        let q = Queue.create () in
        Queue.add l q;
        let conflict = ref false in
        (try
           while not (Queue.is_empty q) do
             let p = Queue.pop q in
             (match t_lit_value p with
             | -1 -> raise Exit
             | 1 -> ()
             | _ ->
                 let v = abs p in
                 tval.(v) <- (if p > 0 then 1 else -1);
                 touched := v :: !touched;
                 (* clauses watching the falsified polarity may tighten *)
                 List.iter
                   (fun idx ->
                     if !alive.(idx) then begin
                       let c = !cls.(idx) in
                       if List.mem (-p) c then begin
                         let sat = ref false and unassigned = ref [] in
                         List.iter
                           (fun m ->
                             match t_lit_value m with
                             | 1 -> sat := true
                             | 0 -> unassigned := m :: !unassigned
                             | _ -> ())
                           c;
                         if not !sat then
                           match !unassigned with
                           | [] -> raise Exit
                           | [ m ] -> Queue.add m q
                           | _ -> ()
                       end
                     end)
                   occ.(v))
           done
         with Exit -> conflict := true);
        List.iter (fun v -> tval.(v) <- 0) !touched;
        touched := [];
        !conflict
      in
      let changed = ref true in
      let pass = ref 0 in
      (try
         List.iter push_clause clauses;
         drain_units ();
         while !changed && !pass < 4 do
           changed := false;
           incr pass;
           (* pure literals: a non-frozen variable seen in one polarity
              only can be fixed to it *)
           let pos = Array.make (n_vars + 1) false in
           let neg = Array.make (n_vars + 1) false in
           for idx = 0 to !n_cls - 1 do
             if !alive.(idx) then
               List.iter
                 (fun l -> if l > 0 then pos.(l) <- true else neg.(-l) <- true)
                 !cls.(idx)
           done;
           for v = 1 to n_vars do
             if value.(v) = 0 && (not frozen.(v)) && pos.(v) <> neg.(v) then begin
               assign_root (if pos.(v) then v else -v);
               drain_units ();
               changed := true
             end
           done;
           (* failed-literal probing, first pass only *)
           if !pass = 1 then begin
             let probed = ref 0 in
             let v = ref 1 in
             while !v <= n_vars && !probed < probe_limit do
               if value.(!v) = 0 && occ.(!v) <> [] then begin
                 incr probed;
                 if probe_conflicts !v then begin
                   assign_root (- !v);
                   drain_units ();
                   incr probe_units;
                   changed := true
                 end
                 else if value.(!v) = 0 && probe_conflicts (- !v) then begin
                   assign_root !v;
                   drain_units ();
                   incr probe_units;
                   changed := true
                 end
               end;
               incr v
             done
           end;
           (* bounded variable elimination (NiVER): replace a variable's
              clauses by their resolvents when that does not grow the
              formula *)
           for v = 1 to n_vars do
             if value.(v) = 0 && not frozen.(v) then begin
               let p = ref [] and n = ref [] in
               List.iter
                 (fun idx ->
                   if !alive.(idx) then begin
                     let c = !cls.(idx) in
                     if List.mem v c then p := idx :: !p
                     else if List.mem (-v) c then n := idx :: !n
                   end)
                 (List.sort_uniq compare occ.(v));
               let np = List.length !p and nn = List.length !n in
               if np <= elim_occ_limit && nn <= elim_occ_limit then begin
                 let resolvents = ref [] in
                 let count = ref 0 in
                 List.iter
                   (fun ip ->
                     List.iter
                       (fun in_ ->
                         let r =
                           List.filter (fun l -> l <> v) !cls.(ip)
                           @ List.filter (fun l -> l <> -v) !cls.(in_)
                         in
                         match norm r with
                         | None -> ()
                         | Some r ->
                             incr count;
                             resolvents := r :: !resolvents)
                       !n)
                   !p;
                 if !count <= np + nn then begin
                   let snapshot = List.map (fun i -> !cls.(i)) (!p @ !n) in
                   t.stack <- Eliminated (v, snapshot) :: t.stack;
                   incr eliminated;
                   incr removed;
                   value.(v) <- 2 (* gone: never reconsidered *);
                   List.iter (fun i -> !alive.(i) <- false) (!p @ !n);
                   List.iter push_clause !resolvents;
                   drain_units ();
                   changed := true
                 end
               end
             end
           done
         done;
         let out = ref [] in
         for idx = !n_cls - 1 downto 0 do
           if !alive.(idx) then out := !cls.(idx) :: !out
         done;
         (* root values of frozen variables travel as unit clauses *)
         for v = n_vars downto 1 do
           if frozen.(v) && (value.(v) = 1 || value.(v) = -1) then
             out := [ (if value.(v) = 1 then v else -v) ] :: !out
         done;
         let n_out = List.length !out in
         Metrics.add m_removed !removed;
         Metrics.add m_clauses_in n_in;
         Metrics.add m_clauses_out n_out;
         Metrics.add m_probe_units !probe_units;
         ( !out,
           {
             pp_clauses_in = n_in;
             pp_clauses_out = n_out;
             pp_removed_vars = !removed;
             pp_probe_units = !probe_units;
             pp_eliminated = !eliminated;
           } )
       with Unsat_found ->
         Metrics.add m_clauses_in n_in;
         ( [ [] ],
           {
             pp_clauses_in = n_in;
             pp_clauses_out = 1;
             pp_removed_vars = !removed;
             pp_probe_units = !probe_units;
             pp_eliminated = !eliminated;
           } )))

let extend t ~n_vars assign =
  let m = Array.make (n_vars + 1) false in
  for v = 1 to n_vars do
    m.(v) <- assign v
  done;
  let sat l = if l > 0 then m.(l) else not m.(-l) in
  List.iter
    (fun e ->
      match e with
      | Fixed (v, b) -> if v <= n_vars then m.(v) <- b
      | Eliminated (v, snapshot) ->
          if v <= n_vars then
            (* v must be true iff some clause with a positive occurrence
               is not already satisfied by its other literals *)
            m.(v) <-
              List.exists
                (fun c ->
                  List.mem v c
                  && not (List.exists (fun l -> abs l <> v && sat l) c))
                snapshot)
    t.stack;
  m
