(** Mutable binary min-heap priority queue.

    Used by the licence-set best-first search and by list-scheduling ready
    queues.  Priorities are [int]s; ties are broken by insertion order so
    traversal is deterministic. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty queue. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> int -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio] (smaller pops first). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority element, if any. *)

val peek : 'a t -> (int * 'a) option
(** The minimum-priority element without removing it. *)
