(** Computational IP-core types.

    The paper's experiments use three types of computational IPs per vendor:
    multipliers, adders and "other operators".  Every DFG operation kind maps
    to exactly one IP type, and an operation may only be bound to a core of
    its type. *)

type t =
  | Adder       (** performs additions and subtractions *)
  | Multiplier  (** performs multiplications *)
  | Other_unit  (** comparators, shifters, and other operators *)

val all : t list
(** Every type, in declaration order. *)

val of_op : Thr_dfg.Op.kind -> t
(** Resource class implementing a DFG operation kind. *)

val to_string : t -> string
(** ["adder"], ["multiplier"], ["other"]. *)

val of_string : string -> t option

val to_index : t -> int
(** Dense index in [\[0, 3)], consistent with {!all}. *)

val of_index : int -> t
(** @raise Invalid_argument outside [\[0, 3)]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val compare : t -> t -> int
