lib/trojan/trojan.mli: Thr_util
