lib/dfg/parse.mli: Dfg Format
