(** Minimum-cost licence search (the production optimiser).

    The objective (eq. 17) only depends on which [(vendor, type)] licences
    are purchased, and the licence cost decomposes per type.  The search
    therefore enumerates, per IP type, the vendor subsets that pass the
    clique lower bound of {!Thr_hls.Rules.min_vendors_per_type}, sorted by
    cost; combinations across types are explored cheapest-first with a
    priority queue, and each candidate licence set is tested by the
    complete CSP oracle ({!Csp}).

    The first feasible candidate is a minimum-cost design, {e provided} no
    cheaper candidate ended {!Csp.Unknown}; in that case (or when the
    candidate budget runs out) the result is an incumbent marked like the
    paper's ["*"] rows. *)

type quality =
  | Proven_optimal
  | Incumbent  (** a cheaper candidate hit the search budget — the paper's
                   ["*"] annotation *)

type outcome =
  | Solved of { design : Thr_hls.Design.t; quality : quality }
  | No_design of { proven : bool }
      (** no feasible licence set; [proven] is false when some candidate
          ended [Unknown] or the candidate budget ran out *)

type stats = {
  candidates : int;     (** licence sets popped from the queue *)
  csp_nodes : int;      (** total CSP assignments across candidates *)
  unknowns : int;       (** candidates whose CSP hit its node budget *)
}

val search :
  ?per_call_nodes:int ->
  ?max_candidates:int ->
  ?time_limit:float ->
  ?should_stop:(unit -> bool) ->
  Thr_hls.Spec.t ->
  outcome * stats
(** [per_call_nodes] (default [200_000]) is each CSP call's budget;
    [max_candidates] (default [200_000]) bounds popped licence sets;
    [time_limit] (CPU seconds, default none) stops the search early — the
    same role as the paper's one-hour LINGO cap, and like there a result
    cut short is reported as an incumbent/unproven.  [should_stop] is
    polled between candidates and ends the search like an expired time
    limit — used to cancel a search that lost a solver race. *)

val pp_outcome : Format.formatter -> outcome -> unit
