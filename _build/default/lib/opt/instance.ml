module Spec = Thr_hls.Spec
module Copy = Thr_hls.Copy
module Rules = Thr_hls.Rules
module Dfg = Thr_dfg.Dfg
module Catalog = Thr_iplib.Catalog
module Iptype = Thr_iplib.Iptype
module Vendor = Thr_iplib.Vendor

type t = {
  spec : Spec.t;
  n_copies : int;
  n_vendors : int;
  vendors : Vendor.t array;
  type_of_copy : int array;
  window_lo : int array;
  window_hi : int array;
  preds : int list array;
  succs : int list array;
  conflicts : int list array;
  offers : bool array array;
  area : int array array;
  cost : int array array;
  types_used : int list;
  min_vendors : int array;
}

let n_types = List.length Iptype.all

let make spec =
  let n_copies = Copy.count spec in
  let vendors = Array.of_list (Catalog.vendors spec.Spec.catalog) in
  let n_vendors = Array.length vendors in
  let type_of_copy =
    Array.init n_copies (fun idx ->
        Iptype.to_index (Spec.iptype_of_op spec (Copy.of_index spec idx).Copy.op))
  in
  let window_lo = Array.make n_copies 1 in
  let window_hi = Array.make n_copies 1 in
  List.iter
    (fun c ->
      let idx = Copy.index spec c in
      match c.Copy.phase with
      | Copy.NC | Copy.RC ->
          window_lo.(idx) <- 1;
          window_hi.(idx) <- spec.Spec.latency_detect
      | Copy.RV ->
          window_lo.(idx) <- spec.Spec.latency_detect + 1;
          window_hi.(idx) <- spec.Spec.latency_detect + spec.Spec.latency_recover)
    (Copy.all spec);
  let preds = Array.make n_copies [] in
  let succs = Array.make n_copies [] in
  let phases =
    match spec.Spec.mode with
    | Spec.Detection_only -> [ Copy.NC; Copy.RC ]
    | Spec.Detection_and_recovery -> [ Copy.NC; Copy.RC; Copy.RV ]
  in
  List.iter
    (fun (i, j) ->
      List.iter
        (fun phase ->
          let ci = Copy.index spec { Copy.op = i; phase } in
          let cj = Copy.index spec { Copy.op = j; phase } in
          succs.(ci) <- cj :: succs.(ci);
          preds.(cj) <- ci :: preds.(cj))
        phases)
    (Dfg.edges spec.Spec.dfg);
  let conflicts = Array.make n_copies [] in
  List.iter
    (fun (a, b, _) ->
      conflicts.(a) <- b :: conflicts.(a);
      conflicts.(b) <- a :: conflicts.(b))
    (Rules.conflict_array spec);
  let offers = Array.make_matrix n_vendors n_types false in
  let area = Array.make_matrix n_vendors n_types 0 in
  let cost = Array.make_matrix n_vendors n_types 0 in
  Array.iteri
    (fun k v ->
      List.iter
        (fun ty ->
          match Catalog.entry spec.Spec.catalog v ty with
          | None -> ()
          | Some e ->
              let ti = Iptype.to_index ty in
              offers.(k).(ti) <- true;
              area.(k).(ti) <- e.Catalog.area;
              cost.(k).(ti) <- e.Catalog.cost)
        Iptype.all)
    vendors;
  let types_used =
    List.filter
      (fun ti -> Array.exists (fun t -> t = ti) type_of_copy)
      (List.init n_types (fun i -> i))
  in
  let min_vendors =
    Array.init n_types (fun ti ->
        if List.mem ti types_used then
          Rules.min_vendors_per_type spec (Iptype.of_index ti)
        else 0)
  in
  {
    spec;
    n_copies;
    n_vendors;
    vendors;
    type_of_copy;
    window_lo;
    window_hi;
    preds;
    succs;
    conflicts;
    offers;
    area;
    cost;
    types_used;
    min_vendors;
  }

let vendor_index t v =
  let rec go k =
    if k >= t.n_vendors then raise Not_found
    else if Vendor.equal t.vendors.(k) v then k
    else go (k + 1)
  in
  go 0

let copies_of_type t ti =
  Array.fold_left (fun acc x -> if x = ti then acc + 1 else acc) 0 t.type_of_copy
