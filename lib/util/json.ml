(* Minimal JSON, stdlib only: the wire format of the optimisation service
   and the writer behind BENCH_solvers.json.

   Integers and floats are kept apart ([Int] never silently becomes
   [Float]) so protocol fields like latencies stay exact; [to_float]
   accepts either.  The printer emits valid JSON (floats always carry a
   '.' or exponent) and the parser accepts exactly RFC 8259 minus the
   corner we never produce: numbers outside native int/float range. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------ print ------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  match Float.classify_float f with
  | FP_nan | FP_infinite ->
      (* nan/inf are not JSON; emit null rather than an unparsable token *)
      "null"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"

let rec write ~indent ~level buf j =
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let newline () = if indent > 0 then Buffer.add_char buf '\n' in
  let comma_sep write_item items =
    newline ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        write_item x)
      items;
    newline ();
    pad level
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      comma_sep (write ~indent ~level:(level + 1) buf) items;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_char buf '{';
      comma_sep
        (fun (k, v) ->
          escape_to buf k;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          write ~indent ~level:(level + 1) buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) j =
  let buf = Buffer.create 256 in
  write ~indent:(if pretty then 2 else 0) ~level:0 buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string ~pretty:true j)

(* ------------------------------ parse ------------------------------ *)

exception Parse_error of int * string

let parse_fail pos fmt =
  Format.kasprintf (fun m -> raise (Parse_error (pos, m))) fmt

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_fail !pos "expected %C, got %C" c c'
    | None -> parse_fail !pos "expected %C, got end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_fail !pos "invalid literal"
  in
  let utf8_of_code buf code =
    (* encode a BMP code point; surrogate pairs are combined by the caller *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with _ -> parse_fail !pos "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> parse_fail !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> parse_fail !pos "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let hi = hex4 () in
                  if hi >= 0xD800 && hi <= 0xDBFF then begin
                    (* surrogate pair *)
                    if
                      !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo < 0xDC00 || lo > 0xDFFF then
                        parse_fail !pos "invalid low surrogate";
                      utf8_of_code buf
                        (0x10000
                        + ((hi - 0xD800) lsl 10)
                        + (lo - 0xDC00))
                    end
                    else parse_fail !pos "lone high surrogate"
                  end
                  else utf8_of_code buf hi
              | c -> parse_fail (!pos - 1) "invalid escape \\%c" c);
              loop ())
      | Some c when Char.code c < 0x20 ->
          parse_fail !pos "raw control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if !pos = d0 then parse_fail !pos "expected digit"
    in
    let int_start = !pos in
    digits ();
    (* RFC 8259: no leading zeros — "0" is fine, "01" is not *)
    if s.[int_start] = '0' && !pos > int_start + 1 then
      parse_fail int_start "leading zero in number";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_fail start "bad float %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer literal beyond native range: keep the value as float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> parse_fail start "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> parse_fail !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_fail !pos "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail !pos "unexpected character %C" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_fail !pos "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, m) ->
      Error (Printf.sprintf "json: at offset %d: %s" p m)

(* ---------------------------- accessors ---------------------------- *)

let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List l -> Some l | _ -> None

let mem_int name j = Option.bind (member name j) to_int

let mem_str name j = Option.bind (member name j) to_str

let mem_bool name j = Option.bind (member name j) to_bool
