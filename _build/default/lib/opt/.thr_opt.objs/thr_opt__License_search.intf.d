lib/opt/license_search.mli: Format Thr_hls
