lib/iplib/vendor.ml: Format List Printf Stdlib
