lib/gates/bus.ml: Array Netlist Printf
