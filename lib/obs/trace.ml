module Json = Thr_util.Json

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

(* -------------------------- monotonic clock ------------------------- *)

(* The stdlib exposes no monotonic clock, so build one: wall-clock
   microseconds since module load, max-clamped through an atomic so time
   never runs backwards even across domains and NTP steps. *)
let epoch = Unix.gettimeofday ()
let last_us = Atomic.make 0.0

let rec now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let prev = Atomic.get last_us in
  if t >= prev then
    if Atomic.compare_and_set last_us prev t then t else now_us ()
  else prev

(* ----------------------------- recording ---------------------------- *)

let events_mutex = Mutex.create ()
let events : Json.t list ref = ref [] (* newest first *)
let n_complete = Atomic.make 0

let record ev = Mutex.protect events_mutex (fun () -> events := ev :: !events)

let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let depth () = List.length !(Domain.DLS.get stack_key)
let completed () = Atomic.get n_complete

let clear () =
  Mutex.protect events_mutex (fun () ->
      events := [];
      Atomic.set n_complete 0)

let base name ph ts =
  [
    ("name", Json.String name);
    ("cat", Json.String "thls");
    ("ph", Json.String ph);
    ("ts", Json.Float ts);
    ("pid", Json.Int 1);
    ("tid", Json.Int (Domain.self () :> int));
  ]

let json_args args =
  ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) args))

let with_span name ?(args = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let ts = now_us () in
    stack := name :: !stack;
    let finish () =
      (match !stack with _ :: tl -> stack := tl | [] -> ());
      let dur = Float.max 0.0 (now_us () -. ts) in
      Atomic.incr n_complete;
      record (Json.Obj (base name "X" ts @ [ ("dur", Json.Float dur); json_args args ]))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant name ?(args = []) () =
  if Atomic.get enabled_flag then
    record
      (Json.Obj (base name "i" (now_us ()) @ [ ("s", Json.String "t"); json_args args ]))

let export () =
  let evs = Mutex.protect events_mutex (fun () -> List.rev !events) in
  Json.Obj
    [ ("traceEvents", Json.List evs); ("displayTimeUnit", Json.String "ms") ]

let write_file path =
  let j = export () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string j);
      output_char oc '\n')
