(* thls — command-line front end for the Trojan-tolerant HLS library.

   Subcommands:
     list        benchmark DFGs with their stats
     show        print a benchmark DFG (text format or DOT)
     catalog     print a built-in vendor catalogue
     optimize    minimum-cost scheduling/binding for a benchmark
     simulate    run a Trojan-injection campaign on an optimised design *)

open Cmdliner
module T = Trojan_hls

let find_dfg name =
  match T.Benchmarks.find name with
  | Some d -> Ok d
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (try: %s)" name
           (String.concat ", " T.Benchmarks.names))

let catalog_of_string = function
  | "table1" -> Ok T.Catalog.table1
  | "eight" -> Ok T.Catalog.eight_vendors
  | s -> Error (Printf.sprintf "unknown catalogue %S (table1 | eight)" s)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List the built-in benchmark DFGs." in
  let run () =
    List.iter
      (fun name ->
        match T.Benchmarks.find name with
        | None -> ()
        | Some d ->
            Printf.printf "%-12s  %2d ops, critical path %d, %2d muls\n" name
              (T.Dfg.n_ops d) (T.Dfg.critical_path d)
              (T.Dfg.count_kind d T.Op.Mul))
      T.Benchmarks.names
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let bench_arg =
  let doc = "Benchmark name (see $(b,thls list))." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let show_cmd =
  let doc = "Print a benchmark DFG as text or Graphviz DOT." in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")
  in
  let run name dot =
    match find_dfg name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok d ->
        if dot then print_string (T.Dfg.to_dot d)
        else print_string (T.Dfg_parse.to_string d)
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ bench_arg $ dot)

let catalog_cmd =
  let doc = "Print a built-in vendor catalogue." in
  let which =
    Arg.(value & pos 0 string "eight" & info [] ~docv:"CATALOG" ~doc:"table1 | eight")
  in
  let run which =
    match catalog_of_string which with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok c -> Format.printf "%a@." T.Catalog.pp c
  in
  Cmd.v (Cmd.info "catalog" ~doc) Term.(const run $ which)

(* ------------------------------------------------------------------ *)

let catalog_flag =
  Arg.(
    value
    & opt string "eight"
    & info [ "catalog" ] ~docv:"CATALOG" ~doc:"Vendor catalogue: table1 | eight.")

let latency_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "latency"; "l" ] ~docv:"STEPS"
        ~doc:"Detection-phase latency constraint (default: critical path + 1).")

let latency_rec_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "latency-recover" ] ~docv:"STEPS"
        ~doc:"Recovery-phase latency constraint (default: critical path).")

let area_flag =
  Arg.(
    value
    & opt (some int) None
    & info [ "area"; "a" ] ~docv:"CELLS"
        ~doc:"Total area constraint (default: generous, 10x a multiplier per op).")

let detection_only_flag =
  Arg.(
    value & flag
    & info [ "detection-only" ]
        ~doc:"Optimise the Rajendran et al. detection-only baseline (Table 3).")

let jobs_flag =
  Arg.(
    value
    & opt int (T.Dpool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains used for parallel work: with N >= 2 $(b,optimize) races \
           the licence search against the literal ILP and $(b,simulate) \
           fans the injection trials out.  1 = fully sequential and \
           deterministic (default: cores - 1).")

let solver_flag =
  let solver_conv =
    Arg.enum
      [
        ("search", T.Optimize.License_search);
        ("ilp", T.Optimize.Ilp);
        ("greedy", T.Optimize.Greedy);
      ]
  in
  Arg.(
    value
    & opt solver_conv T.Optimize.License_search
    & info [ "solver" ] ~docv:"SOLVER" ~doc:"search | ilp | greedy.")

let make_spec dfg catalog ~detection_only ~latency ~latency_recover ~area =
  let cp = T.Dfg.critical_path dfg in
  let latency_detect = match latency with Some l -> l | None -> cp + 1 in
  let area_limit =
    match area with Some a -> a | None -> 10 * 7000 * T.Dfg.n_ops dfg
  in
  T.Spec.make
    ~mode:
      (if detection_only then T.Spec.Detection_only
       else T.Spec.Detection_and_recovery)
    ?latency_recover ~dfg ~catalog ~latency_detect ~area_limit ()

let optimize_cmd =
  let doc = "Find a minimum-licence-cost Trojan-tolerant design." in
  let run name cat detection_only latency latency_recover area solver jobs =
    match (find_dfg name, catalog_of_string cat) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok dfg, Ok catalog -> (
        let spec =
          make_spec dfg catalog ~detection_only ~latency ~latency_recover ~area
        in
        match T.Optimize.run ~solver ~jobs spec with
        | Ok { design; quality; seconds; _ } ->
            Format.printf "%a" T.Design.report design;
            Format.printf "quality: %s, %.2fs@."
              (match quality with
              | T.Optimize.Optimal -> "proven optimal"
              | T.Optimize.Incumbent -> "incumbent (*)"
              | T.Optimize.Heuristic -> "heuristic")
              seconds
        | Error T.Optimize.Infeasible_proven ->
            print_endline "infeasible: no design satisfies the constraints";
            exit 2
        | Error T.Optimize.Infeasible_budget ->
            print_endline "no design found within the search budget";
            exit 3)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run $ bench_arg $ catalog_flag $ detection_only_flag $ latency_flag
      $ latency_rec_flag $ area_flag $ solver_flag $ jobs_flag)

let simulate_cmd =
  let doc = "Optimise a design, then run a Trojan-injection campaign on it." in
  let runs_flag =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Injection runs.")
  in
  let seed_flag =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run name cat latency latency_recover area runs seed jobs =
    match (find_dfg name, catalog_of_string cat) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok dfg, Ok catalog -> (
        let spec =
          make_spec dfg catalog ~detection_only:false ~latency ~latency_recover
            ~area
        in
        match T.Optimize.run ~jobs spec with
        | Error _ ->
            print_endline "no design found; relax the constraints";
            exit 2
        | Ok { design; _ } ->
            let prng = T.Prng.create ~seed in
            let config = { T.Campaign.default_config with n_runs = runs } in
            let result = T.Campaign.run ~config ~jobs ~prng design in
            Format.printf "%a@." T.Campaign.pp_result result)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ bench_arg $ catalog_flag $ latency_flag $ latency_rec_flag
      $ area_flag $ runs_flag $ seed_flag $ jobs_flag)

let export_ilp_cmd =
  let doc =
    "Write the paper's ILP (eqs. 3-17) for a benchmark as a CPLEX LP file."
  in
  let out_flag =
    Arg.(
      value
      & opt string "-"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path ('-' for stdout).")
  in
  let run name cat detection_only latency latency_recover area out =
    match (find_dfg name, catalog_of_string cat) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok dfg, Ok catalog ->
        let spec =
          make_spec dfg catalog ~detection_only ~latency ~latency_recover ~area
        in
        let f = T.Ilp_formulation.build spec in
        let text = T.Lp_format.to_string f.T.Ilp_formulation.model in
        if out = "-" then print_string text
        else begin
          T.Lp_format.write f.T.Ilp_formulation.model out;
          Printf.printf "wrote %s (%d variables, %d constraints)\n" out
            (T.Ilp_model.n_vars f.T.Ilp_formulation.model)
            (T.Ilp_model.n_constraints f.T.Ilp_formulation.model)
        end
  in
  Cmd.v
    (Cmd.info "export-ilp" ~doc)
    Term.(
      const run $ bench_arg $ catalog_flag $ detection_only_flag $ latency_flag
      $ latency_rec_flag $ area_flag $ out_flag)

let pareto_cmd =
  let doc = "Sweep latency/area constraints and print the Pareto frontier." in
  let run name cat detection_only =
    match (find_dfg name, catalog_of_string cat) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok dfg, Ok catalog ->
        let cp = T.Dfg.critical_path dfg in
        let mode =
          if detection_only then T.Spec.Detection_only
          else T.Spec.Detection_and_recovery
        in
        let base = if detection_only then cp else 2 * cp in
        let latencies = List.init 4 (fun i -> base + (i * 2)) in
        let unit_area = 7000 * T.Dfg.n_ops dfg in
        let area_limits = [ unit_area / 8; unit_area / 4; unit_area ] in
        let points =
          T.Pareto.sweep ~mode ~dfg ~catalog ~latencies ~area_limits ()
        in
        Format.printf "frontier of %d points:@." (List.length points);
        List.iter
          (fun p -> Format.printf "  %a@." T.Pareto.pp_point p)
          (T.Pareto.frontier points)
  in
  Cmd.v
    (Cmd.info "pareto" ~doc)
    Term.(const run $ bench_arg $ catalog_flag $ detection_only_flag)

let rtl_cmd =
  let doc = "Elaborate an optimised design to a gate-level netlist." in
  let width_flag =
    Arg.(value & opt int 16 & info [ "width" ] ~docv:"BITS" ~doc:"Datapath width.")
  in
  let verilog_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "verilog" ] ~docv:"FILE" ~doc:"Also write structural Verilog.")
  in
  let run name cat latency latency_recover area width verilog =
    match (find_dfg name, catalog_of_string cat) with
    | Error e, _ | _, Error e ->
        prerr_endline e;
        exit 1
    | Ok dfg, Ok catalog -> (
        let spec =
          make_spec dfg catalog ~detection_only:false ~latency ~latency_recover
            ~area
        in
        match T.Optimize.run spec with
        | Error _ ->
            print_endline "no design; relax the constraints";
            exit 2
        | Ok { design; _ } ->
            let rtl = T.Rtl.elaborate ~width design in
            Printf.printf "%s\n" (T.Rtl.stats rtl);
            match verilog with
            | None -> ()
            | Some path ->
                T.Verilog.write rtl.T.Rtl.netlist path;
                Printf.printf "wrote %s\n" path)
  in
  Cmd.v
    (Cmd.info "rtl" ~doc)
    Term.(
      const run $ bench_arg $ catalog_flag $ latency_flag $ latency_rec_flag
      $ area_flag $ width_flag $ verilog_flag)

let main =
  let doc = "Trojan-tolerant high-level synthesis (DAC'14 reproduction)" in
  Cmd.group
    (Cmd.info "thls" ~version:"1.0.0" ~doc)
    [
      list_cmd; show_cmd; catalog_cmd; optimize_cmd; simulate_cmd; export_ilp_cmd;
      pareto_cmd; rtl_cmd;
    ]

let () = exit (Cmd.eval main)
