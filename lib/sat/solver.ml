(* CDCL SAT solver (MiniSat lineage): two-watched-literal propagation,
   VSIDS-style variable activities with an indexed max-heap, first-UIP
   conflict analysis, activity-driven learnt-clause deletion, Luby
   restarts, phase saving, and incremental solving under assumptions.

   External literals are DIMACS integers (variable [v >= 1], negation
   [-v]); internally a literal is [(var lsl 1) lor sign] with [sign = 1]
   for the negation, so arrays index by literal directly. *)

module Trace = Thr_obs.Trace
module Metrics = Thr_obs.Metrics

type result = Sat | Unsat | Unknown

type clause = {
  lits : int array; (* internal literals; lits.(0) and lits.(1) are watched *)
  learnt : bool;
  mutable act : float;
  mutable deleted : bool;
}

(* growable clause vector (watch lists, clause databases) *)
type cvec = { mutable data : clause array; mutable sz : int }

let dummy_clause = { lits = [||]; learnt = false; act = 0.0; deleted = true }

let cvec () = { data = [||]; sz = 0 }

let cpush v c =
  if v.sz = Array.length v.data then begin
    let cap = max 4 (2 * Array.length v.data) in
    let d = Array.make cap dummy_clause in
    Array.blit v.data 0 d 0 v.sz;
    v.data <- d
  end;
  v.data.(v.sz) <- c;
  v.sz <- v.sz + 1

type t = {
  mutable n_vars : int;
  clauses : cvec;
  learnts : cvec;
  mutable watches : cvec array; (* indexed by internal literal *)
  mutable assign : int array;   (* per var: 1 true, -1 false, 0 undef *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable phase : bool array;   (* saved polarity *)
  mutable seen : bool array;    (* conflict-analysis scratch *)
  mutable heap : int array;     (* binary max-heap of vars by activity *)
  mutable heap_sz : int;
  mutable heap_pos : int array; (* var -> heap slot, -1 when absent *)
  mutable trail : int array;
  mutable trail_sz : int;
  mutable trail_lim : int array;
  mutable trail_lim_sz : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable max_learnts : float;
  mutable ok : bool;            (* false once unsatisfiable at level 0 *)
  mutable model : int array;    (* last satisfying assignment *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
}

let var_decay = 1.0 /. 0.95

let cla_decay = 1.0 /. 0.999

let create () =
  {
    n_vars = 0;
    clauses = cvec ();
    learnts = cvec ();
    watches = [||];
    assign = [||];
    level = [||];
    reason = [||];
    activity = [||];
    phase = [||];
    seen = [||];
    heap = [||];
    heap_sz = 0;
    heap_pos = [||];
    trail = [||];
    trail_sz = 0;
    trail_lim = [||];
    trail_lim_sz = 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    max_learnts = 100.0;
    ok = true;
    model = [||];
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learned = 0;
  }

(* ---------------------------- literals ----------------------------- *)

let var l = l lsr 1

let sign l = l land 1

let mk_lit v s = (v lsl 1) lor s

let of_dimacs t d =
  let v = abs d - 1 in
  if d = 0 || v >= t.n_vars then
    invalid_arg (Printf.sprintf "Solver: literal %d out of range" d);
  mk_lit v (if d < 0 then 1 else 0)

(* 1 true, -1 false, 0 undef *)
let value t l =
  let a = t.assign.(var l) in
  if sign l = 0 then a else -a

let decision_level t = t.trail_lim_sz

(* --------------------------- growth/heap --------------------------- *)

let grow_int a n fill =
  if Array.length a >= n then a
  else begin
    let d = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 d 0 (Array.length a);
    d
  end

let grow_bool a n =
  if Array.length a >= n then a
  else begin
    let d = Array.make (max n (2 * Array.length a)) false in
    Array.blit a 0 d 0 (Array.length a);
    d
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let d = Array.make (max n (2 * Array.length a)) 0.0 in
    Array.blit a 0 d 0 (Array.length a);
    d
  end

let heap_swap t i j =
  let u = t.heap.(i) and v = t.heap.(j) in
  t.heap.(i) <- v;
  t.heap.(j) <- u;
  t.heap_pos.(v) <- i;
  t.heap_pos.(u) <- j

let rec heap_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(p)) then begin
      heap_swap t i p;
      heap_up t p
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_sz && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best))
  then best := l;
  if r < t.heap_sz && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_sz) <- v;
    t.heap_pos.(v) <- t.heap_sz;
    t.heap_sz <- t.heap_sz + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_sz <- t.heap_sz - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_sz > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_sz);
    t.heap_pos.(t.heap.(0)) <- 0;
    heap_down t 0
  end;
  v

(* --------------------------- activities ---------------------------- *)

let bump_var t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 0 to t.n_vars - 1 do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let decay_var t = t.var_inc <- t.var_inc *. var_decay

let bump_clause t c =
  c.act <- c.act +. t.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to t.learnts.sz - 1 do
      let d = t.learnts.data.(i) in
      d.act <- d.act *. 1e-20
    done;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let decay_clause t = t.cla_inc <- t.cla_inc *. cla_decay

(* ----------------------------- new_var ----------------------------- *)

let new_var t =
  let v = t.n_vars in
  t.n_vars <- v + 1;
  let n = t.n_vars in
  t.assign <- grow_int t.assign n 0;
  t.level <- grow_int t.level n 0;
  t.reason <-
    (if Array.length t.reason >= n then t.reason
     else begin
       let d = Array.make (max n (2 * Array.length t.reason)) None in
       Array.blit t.reason 0 d 0 (Array.length t.reason);
       d
     end);
  t.activity <- grow_float t.activity n;
  t.phase <- grow_bool t.phase n;
  t.seen <- grow_bool t.seen n;
  t.heap <- grow_int t.heap n 0;
  t.heap_pos <- grow_int t.heap_pos n (-1);
  t.heap_pos.(v) <- -1;
  t.trail <- grow_int t.trail n 0;
  t.trail_lim <- grow_int t.trail_lim n 0;
  t.model <- grow_int t.model n 0;
  (if Array.length t.watches < 2 * n then begin
     let d = Array.make (max (2 * n) (2 * Array.length t.watches)) (cvec ()) in
     Array.blit t.watches 0 d 0 (Array.length t.watches);
     for i = Array.length t.watches to Array.length d - 1 do
       d.(i) <- cvec ()
     done;
     t.watches <- d
   end);
  heap_insert t v;
  v + 1

(* ----------------------- assignment and trail ---------------------- *)

let enqueue t l reason =
  let v = var l in
  t.assign.(v) <- (if sign l = 0 then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_sz) <- l;
  t.trail_sz <- t.trail_sz + 1;
  t.propagations <- t.propagations + 1

let new_decision_level t =
  t.trail_lim.(t.trail_lim_sz) <- t.trail_sz;
  t.trail_lim_sz <- t.trail_lim_sz + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_sz - 1 downto bound do
      let l = t.trail.(i) in
      let v = var l in
      t.phase.(v) <- t.assign.(v) = 1;
      t.assign.(v) <- 0;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_sz <- bound;
    t.qhead <- bound;
    t.trail_lim_sz <- lvl
  end

(* --------------------------- propagation --------------------------- *)

let attach t c =
  cpush t.watches.(c.lits.(0)) c;
  cpush t.watches.(c.lits.(1)) c

let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < t.trail_sz do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let false_lit = p lxor 1 in
    let ws = t.watches.(false_lit) in
    let n = ws.sz in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = ws.data.(!i) in
      incr i;
      if not c.deleted then begin
        let lits = c.lits in
        (* normalise: the false watched literal sits at index 1 *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        let first = lits.(0) in
        if value t first = 1 then begin
          (* clause already satisfied: keep the watch *)
          ws.data.(!j) <- c;
          incr j
        end
        else begin
          (* look for a non-false literal to watch instead *)
          let len = Array.length lits in
          let k = ref 2 in
          while !k < len && value t lits.(!k) = -1 do
            incr k
          done;
          if !k < len then begin
            lits.(1) <- lits.(!k);
            lits.(!k) <- false_lit;
            cpush t.watches.(lits.(1)) c
          end
          else begin
            ws.data.(!j) <- c;
            incr j;
            if value t first = -1 then begin
              (* conflict: keep the remaining watches and stop *)
              confl := Some c;
              while !i < n do
                ws.data.(!j) <- ws.data.(!i);
                incr j;
                incr i
              done;
              t.qhead <- t.trail_sz
            end
            else enqueue t first (Some c)
          end
        end
      end
    done;
    ws.sz <- !j
  done;
  !confl

(* ------------------------ conflict analysis ------------------------ *)

(* First-UIP: walk the trail backwards resolving on literals of the
   current decision level until one remains; the learnt clause is that
   UIP's negation plus the lower-level literals met on the way. *)
let analyze t confl =
  let lower = ref [] in
  let pathc = ref 0 in
  let p = ref (-1) in
  let c = ref confl in
  let index = ref (t.trail_sz - 1) in
  let to_clear = ref [] in
  let looping = ref true in
  while !looping do
    if !c.learnt then bump_clause t !c;
    let lits = !c.lits in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        bump_var t v;
        t.seen.(v) <- true;
        to_clear := v :: !to_clear;
        if t.level.(v) >= decision_level t then incr pathc
        else lower := q :: !lower
      end
    done;
    while not t.seen.(var t.trail.(!index)) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    t.seen.(var !p) <- false;
    decr pathc;
    if !pathc = 0 then looping := false
    else
      c :=
        (match t.reason.(var !p) with
        | Some r -> r
        | None -> assert false (* a decision cannot be mid-path *))
  done;
  let learnt = Array.of_list ((!p lxor 1) :: !lower) in
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  let bt =
    if Array.length learnt = 1 then 0
    else begin
      (* the second-highest decision level, swapped into the watch slot *)
      let mx = ref 1 in
      for k = 2 to Array.length learnt - 1 do
        if t.level.(var learnt.(k)) > t.level.(var learnt.(!mx)) then mx := k
      done;
      let tmp = learnt.(1) in
      learnt.(1) <- learnt.(!mx);
      learnt.(!mx) <- tmp;
      t.level.(var learnt.(1))
    end
  in
  (learnt, bt)

let record_learnt t lits =
  if Array.length lits = 1 then enqueue t lits.(0) None
  else begin
    let c = { lits; learnt = true; act = 0.0; deleted = false } in
    attach t c;
    cpush t.learnts c;
    bump_clause t c;
    enqueue t lits.(0) (Some c)
  end;
  t.learned <- t.learned + 1

(* ----------------------- learnt-DB reduction ----------------------- *)

let locked t c =
  Array.length c.lits > 0
  &&
  match t.reason.(var c.lits.(0)) with
  | Some r -> r == c && value t c.lits.(0) = 1
  | None -> false

let reduce_db t =
  let ls = Array.sub t.learnts.data 0 t.learnts.sz in
  Array.sort (fun a b -> Float.compare a.act b.act) ls;
  let keep_from = t.learnts.sz / 2 in
  Array.iteri
    (fun i c ->
      if i < keep_from && Array.length c.lits > 2 && not (locked t c) then
        c.deleted <- true)
    ls;
  let j = ref 0 in
  for i = 0 to t.learnts.sz - 1 do
    let c = t.learnts.data.(i) in
    if not c.deleted then begin
      t.learnts.data.(!j) <- c;
      incr j
    end
  done;
  t.learnts.sz <- !j;
  t.max_learnts <- t.max_learnts *. 1.15

(* ---------------------------- add_clause --------------------------- *)

let add_clause t dimacs =
  if t.ok then begin
    let lits = List.sort_uniq compare (List.map (of_dimacs t) dimacs) in
    let rec tautology = function
      | a :: (b :: _ as rest) -> a lxor 1 = b || tautology rest
      | _ -> false
    in
    if not (tautology lits) then
      if List.exists (fun l -> value t l = 1) lits then ()
      else
        match List.filter (fun l -> value t l <> -1) lits with
        | [] -> t.ok <- false
        | [ l ] -> (
            enqueue t l None;
            match propagate t with
            | Some _ -> t.ok <- false
            | None -> ())
        | ls ->
            let c =
              { lits = Array.of_list ls; learnt = false; act = 0.0;
                deleted = false }
            in
            attach t c;
            cpush t.clauses c
  end

(* ------------------------------ search ----------------------------- *)

(* Luby restart sequence: 1 1 2 1 1 2 4 ... *)
let rec luby i =
  let rec size_seq sz len = if sz >= i + 1 then (sz, len) else size_seq ((2 * sz) + 1) (len + 1) in
  let sz, len = size_seq 1 0 in
  if sz = i + 1 then 1 lsl len else luby (i - (sz / 2))

let restart_first = 100

let steps t = t.decisions + t.propagations + t.conflicts

let choose_var t =
  let rec go () =
    if t.heap_sz = 0 then None
    else
      let v = heap_pop t in
      if t.assign.(v) = 0 then Some v else go ()
  in
  go ()

let save_model t =
  Array.blit t.assign 0 t.model 0 t.n_vars

let search t ~asms ~within_budget =
  let result = ref None in
  let restarts = ref 0 in
  let conflict_c = ref 0 in
  let limit = ref (restart_first * luby 0) in
  while !result = None do
    match propagate t with
    | Some confl ->
        t.conflicts <- t.conflicts + 1;
        incr conflict_c;
        if decision_level t = 0 then begin
          t.ok <- false;
          result := Some Unsat
        end
        else begin
          let learnt, bt = analyze t confl in
          cancel_until t bt;
          record_learnt t learnt;
          decay_var t;
          decay_clause t;
          if not (within_budget ()) then result := Some Unknown
        end
    | None ->
        if not (within_budget ()) then result := Some Unknown
        else if !conflict_c >= !limit then begin
          incr restarts;
          conflict_c := 0;
          limit := restart_first * luby !restarts;
          cancel_until t 0
        end
        else begin
          if float_of_int t.learnts.sz >= t.max_learnts then reduce_db t;
          (* assumptions are decided first, one level each, in order *)
          let rec pick () =
            if decision_level t < Array.length asms then begin
              let p = asms.(decision_level t) in
              match value t p with
              | 1 ->
                  new_decision_level t;
                  pick ()
              | -1 -> result := Some Unsat
              | _ ->
                  new_decision_level t;
                  enqueue t p None
            end
            else
              match choose_var t with
              | None ->
                  save_model t;
                  result := Some Sat
              | Some v ->
                  t.decisions <- t.decisions + 1;
                  new_decision_level t;
                  enqueue t (mk_lit v (if t.phase.(v) then 0 else 1)) None
          in
          pick ()
        end
  done;
  cancel_until t 0;
  match !result with Some r -> r | None -> assert false

(* ----------------------------- metrics ----------------------------- *)

let m_conflicts = Metrics.counter "thr_sat_conflicts_total"

let m_decisions = Metrics.counter "thr_sat_decisions_total"

let m_propagations = Metrics.counter "thr_sat_propagations_total"

let m_learned = Metrics.counter "thr_sat_learned_clauses_total"

let solve_buckets = [| 0.1; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1e3; 5e3; 3e4 |]

let m_solve_ms = Metrics.histogram ~buckets:solve_buckets "thr_sat_solve_ms"

(* per-phase siblings so `bench -- sat` can attribute solve time to the
   plain BMC sweep, the k-induction base case or the inductive step *)
let m_solve_ms_bmc =
  Metrics.histogram ~buckets:solve_buckets "thr_sat_solve_ms_bmc"

let m_solve_ms_base =
  Metrics.histogram ~buckets:solve_buckets "thr_sat_solve_ms_base"

let m_solve_ms_step =
  Metrics.histogram ~buckets:solve_buckets "thr_sat_solve_ms_step"

(* ------------------------------ solve ------------------------------ *)

let solve ?(assumptions = []) ?phase ?max_steps t =
  Trace.with_span "sat.solve"
    ~args:
      [
        ("vars", string_of_int t.n_vars);
        ("clauses", string_of_int (t.clauses.sz + t.learnts.sz));
      ]
    (fun () ->
      let t0 = Trace.now_us () in
      let c0 = t.conflicts
      and d0 = t.decisions
      and p0 = t.propagations
      and l0 = t.learned in
      let s0 = steps t in
      let r =
        if not t.ok then Unsat
        else begin
          cancel_until t 0;
          let asms = Array.of_list (List.map (of_dimacs t) assumptions) in
          let within_budget () =
            match max_steps with None -> true | Some m -> steps t - s0 < m
          in
          search t ~asms ~within_budget
        end
      in
      Metrics.add m_conflicts (t.conflicts - c0);
      Metrics.add m_decisions (t.decisions - d0);
      Metrics.add m_propagations (t.propagations - p0);
      Metrics.add m_learned (t.learned - l0);
      let ms = (Trace.now_us () -. t0) /. 1e3 in
      Metrics.observe m_solve_ms ms;
      (match phase with
      | Some `Bmc -> Metrics.observe m_solve_ms_bmc ms
      | Some `Base -> Metrics.observe m_solve_ms_base ms
      | Some `Step -> Metrics.observe m_solve_ms_step ms
      | None -> ());
      r)

let value t d =
  let v = abs d - 1 in
  if d = 0 || v >= t.n_vars then
    invalid_arg (Printf.sprintf "Solver.value: literal %d out of range" d);
  let a = t.model.(v) = 1 in
  if d > 0 then a else not a

let ok t = t.ok

let n_vars t = t.n_vars

let n_clauses t = t.clauses.sz

let n_learnts t = t.learnts.sz

let conflicts t = t.conflicts

let decisions t = t.decisions

let propagations t = t.propagations

let learned t = t.learned
