lib/ilp/model.mli: Thr_lp
