(** Integer linear program modelling.

    A thin modelling layer over which the literal paper formulation
    (eqs. 3–17) is built.  Variables are integers with inclusive bounds;
    the common case is 0–1.  Constraints and the (minimisation) objective
    are sparse linear forms with [float] coefficients. *)

type t

type var
(** An integer decision variable belonging to one model. *)

val create : unit -> t

val add_bool : ?name:string -> t -> var
(** A 0–1 variable. *)

val add_int : ?name:string -> t -> lo:int -> up:int -> var
(** A bounded integer variable.  @raise Invalid_argument if [up < lo]. *)

val n_vars : t -> int

val n_constraints : t -> int

val var_name : t -> var -> string
(** The given name, or ["x<i>"]. *)

val var_index : var -> int
(** Dense index, stable across the model's lifetime. *)

val var_of_index : t -> int -> var
(** Inverse of {!var_index}.  @raise Invalid_argument when out of range. *)

val var_bounds : t -> var -> int * int

val add_le : t -> (float * var) list -> float -> unit
(** [add_le m terms rhs] posts [Σ c·v <= rhs]. *)

val add_ge : t -> (float * var) list -> float -> unit

val add_eq : t -> (float * var) list -> float -> unit

val set_objective : t -> (float * var) list -> unit
(** Minimisation objective; replaces any previous one. *)

val iter_constraints :
  t -> ((float * var) list -> Thr_lp.Simplex.relation -> float -> unit) -> unit
(** Iterate posted constraints in insertion order (used by the solver and
    by tests that cross-check against exhaustive enumeration). *)

val objective_terms : t -> (float * var) list

val eval_objective : t -> int array -> float
(** Objective value of a full assignment indexed by {!var_index}. *)

val check_assignment : t -> int array -> bool
(** Whether a full assignment satisfies every constraint and all variable
    bounds (tolerance [1e-6]). *)
