lib/ilp/solve.mli: Format Model
