module Dfg = Thr_dfg.Dfg

type t = int array

let make spec steps =
  if Array.length steps <> Copy.count spec then
    invalid_arg "Schedule.make: wrong number of steps";
  Array.copy steps

let step t idx = t.(idx)

let step_of spec t c = t.(Copy.index spec c)

let steps t = Array.copy t

let window spec phase =
  match phase with
  | Copy.NC | Copy.RC -> (1, spec.Spec.latency_detect)
  | Copy.RV ->
      ( spec.Spec.latency_detect + 1,
        spec.Spec.latency_detect + spec.Spec.latency_recover )

let check spec t =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun c ->
      let s = t.(Copy.index spec c) in
      let lo, hi = window spec c.Copy.phase in
      if s < lo || s > hi then
        add "%a scheduled at step %d outside [%d, %d]" Copy.pp c s lo hi)
    (Copy.all spec);
  let phases =
    match spec.Spec.mode with
    | Spec.Detection_only -> [ Copy.NC; Copy.RC ]
    | Spec.Detection_and_recovery -> [ Copy.NC; Copy.RC; Copy.RV ]
  in
  List.iter
    (fun (i, j) ->
      List.iter
        (fun phase ->
          let si = t.(Copy.index spec { Copy.op = i; phase }) in
          let sj = t.(Copy.index spec { Copy.op = j; phase }) in
          if si >= sj then
            add "%s: edge n%d -> n%d scheduled %d >= %d"
              (Copy.phase_to_string phase) i j si sj)
        phases)
    (Dfg.edges spec.Spec.dfg);
  List.rev !problems

let asap spec =
  let a = Dfg.asap spec.Spec.dfg in
  Array.init (Copy.count spec) (fun idx ->
      let c = Copy.of_index spec idx in
      match c.Copy.phase with
      | Copy.NC | Copy.RC -> a.(c.Copy.op)
      | Copy.RV -> spec.Spec.latency_detect + a.(c.Copy.op))

let makespan t = Array.fold_left max 0 t

let pp spec ppf t =
  List.iter
    (fun c -> Format.fprintf ppf "%a@step%d " Copy.pp c (t.(Copy.index spec c)))
    (Copy.all spec)
